"""Dirty-page tracking and the incremental/hybrid scan policies."""

import pytest

from repro.ksm.scanner import KsmConfig, KsmScanner, ScanPolicy
from repro.mem.address_space import PageTable
from repro.mem.physmem import HostPhysicalMemory
from repro.sim.clock import SimClock
from repro.units import MiB

PAGE = 4096


def make_scanner(**kwargs):
    pm = HostPhysicalMemory(64 * MiB, PAGE)
    scanner = KsmScanner(pm, SimClock(), KsmConfig(**kwargs))
    return pm, scanner


class TestDirtyLog:
    def test_map_logs_dirty(self):
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        table = PageTable("a")
        pm.map_token(table, 3, 5)
        assert table.pending_dirty_vpns() == (3,)

    def test_in_place_store_logs_dirty(self):
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        table = PageTable("a")
        pm.map_token(table, 0, 5)
        table.clear_dirty()
        pm.write_token(table, 0, 6)
        assert table.pending_dirty_vpns() == (0,)

    def test_cow_break_logs_dirty(self):
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        a, b = PageTable("a"), PageTable("b")
        fid = pm.map_token(a, 0, 5)
        pm.share_mapping(b, 0, fid)
        a.clear_dirty()
        pm.write_token(a, 0, 9)  # refcount 2 -> COW break
        assert pm.cow_breaks == 1
        assert a.pending_dirty_vpns() == (0,)

    def test_unmap_logs_dirty(self):
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        table = PageTable("a")
        pm.map_token(table, 0, 5)
        table.clear_dirty()
        pm.unmap(table, 0)
        assert table.pending_dirty_vpns() == (0,)

    def test_ksm_merge_does_not_log_dirty(self):
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        a, b = PageTable("a"), PageTable("b")
        pm.map_token(a, 0, 5)
        target = pm.map_token(b, 0, 5)
        a.clear_dirty()
        pm.merge_into(a, 0, target)
        assert a.pending_dirty_vpns() == ()

    def test_log_deduplicates(self):
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        table = PageTable("a")
        pm.map_token(table, 0, 5)
        for token in (6, 7, 8):
            pm.write_token(table, 0, token)
        assert table.dirty_count == 1
        assert table.drain_dirty() == [0]
        assert table.dirty_count == 0

    def test_version_tracks_mapping_set_only(self):
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        table = PageTable("a")
        v0 = table.version
        pm.map_token(table, 0, 5)
        v1 = table.version
        assert v1 > v0
        pm.write_token(table, 0, 6)  # in-place: same mapping set
        assert table.version == v1
        pm.unmap(table, 0)
        assert table.version > v1


class TestConfig:
    def test_string_policy_coerced(self):
        cfg = KsmConfig(scan_policy="incremental")
        assert cfg.scan_policy is ScanPolicy.INCREMENTAL

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            KsmConfig(scan_policy="never")

    def test_bad_hybrid_interval_rejected(self):
        with pytest.raises(ValueError):
            KsmConfig(hybrid_full_interval=0)

    def test_negative_dirty_log_cost_rejected(self):
        with pytest.raises(ValueError):
            KsmConfig(dirty_log_cost_us=-1.0)


def _populate(pm, tables, pages=16, shared_tokens=4):
    """Give each table ``pages`` pages; the first ``shared_tokens`` vpns
    hold cross-table-identical content."""
    for t_index, table in enumerate(tables):
        for vpn in range(pages):
            if vpn < shared_tokens:
                token = 1000 + vpn
            else:
                token = 50_000 + 1000 * t_index + vpn
            pm.map_token(table, vpn, token)


class TestIncrementalPolicy:
    def test_reaches_full_fixpoint(self):
        results = {}
        for policy in ("full", "incremental", "hybrid"):
            pm, scanner = make_scanner(scan_policy=policy)
            tables = [PageTable(f"t{i}") for i in range(3)]
            for table in tables:
                scanner.register(table)
            _populate(pm, tables)
            stats = scanner.run_until_converged(max_passes=12)
            results[policy] = (stats.pages_saved, stats.merges)
        assert results["incremental"] == results["full"]
        assert results["hybrid"] == results["full"]

    def test_incremental_examines_far_fewer_pages(self):
        scanned = {}
        for policy in ("full", "incremental"):
            pm, scanner = make_scanner(scan_policy=policy)
            tables = [PageTable(f"t{i}") for i in range(3)]
            for table in tables:
                scanner.register(table)
            _populate(pm, tables, pages=64)
            scanner.run_until_converged(max_passes=12)
            # Quiescent follow-up cycles: FULL keeps rescanning
            # everything, INCREMENTAL finds empty dirty logs.
            scanner.run_cycles(20)
            scanned[policy] = scanner.snapshot_stats().pages_scanned
        assert scanned["incremental"] * 5 <= scanned["full"]

    def test_quiescent_incremental_costs_no_cpu(self):
        pm, scanner = make_scanner(scan_policy="incremental")
        table = PageTable("a")
        scanner.register(table)
        _populate(pm, [table])
        scanner.run_until_converged(max_passes=8)
        cpu_before = scanner.stats.cpu_ms
        scanner.run_cycles(10)
        assert scanner.stats.cpu_ms == cpu_before

    def test_write_reexamined_after_dirty(self):
        pm, scanner = make_scanner(scan_policy="incremental")
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 6)
        scanner.run_until_converged(max_passes=6)
        assert scanner.stats.merges == 0
        # Now make them identical; only the dirty log can resubmit b:0.
        pm.write_token(b, 0, 5)
        scanner.run_until_converged(max_passes=6)
        assert scanner.stats.merges == 1
        assert a.translate(0) == b.translate(0)

    def test_cow_break_unmerges_and_can_remerge(self):
        pm, scanner = make_scanner(scan_policy="incremental")
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        scanner.run_until_converged(max_passes=6)
        assert scanner.snapshot_stats().pages_saved == 1
        pm.write_token(a, 0, 9)  # COW break, a:0 private again
        scanner.run_until_converged(max_passes=6)
        assert scanner.snapshot_stats().pages_saved == 0
        pm.write_token(a, 0, 5)  # identical again
        scanner.run_until_converged(max_passes=6)
        assert scanner.snapshot_stats().pages_saved == 1

    def test_dirty_log_drained_counted(self):
        pm, scanner = make_scanner(scan_policy="incremental")
        table = PageTable("a")
        scanner.register(table)
        _populate(pm, [table])
        scanner.run_until_converged(max_passes=6)
        assert scanner.stats.dirty_log_drained >= 16

    def test_full_policy_drains_nothing(self):
        pm, scanner = make_scanner(scan_policy="full")
        table = PageTable("a")
        scanner.register(table)
        _populate(pm, [table])
        scanner.run_until_converged(max_passes=6)
        assert scanner.stats.dirty_log_drained == 0


class TestHybridPolicy:
    def test_hybrid_catches_unlogged_mutation(self):
        """Content mutated behind the page table (no dirty-log entry) is
        only ever found by a full pass — HYBRID's safety net."""
        merges = {}
        for policy in ("incremental", "hybrid"):
            pm, scanner = make_scanner(
                scan_policy=policy, hybrid_full_interval=2
            )
            a, b = PageTable("a"), PageTable("b")
            scanner.register(a)
            scanner.register(b)
            pm.map_token(a, 0, 5)
            pm.map_token(b, 0, 6)
            scanner.run_until_converged(max_passes=4)
            # Mutate b:0's frame directly, bypassing write_token and
            # therefore the dirty log.
            pm.get_frame(b.translate(0)).token = 5
            # Drive passes by dirtying an unrelated page each round so
            # the incremental scanner keeps waking up.
            for spin in range(8):
                pm.write_token(a, 7, 100 + spin)
                scanner.run_until_converged(max_passes=4)
            merges[policy] = scanner.stats.merges
        assert merges["incremental"] == 0
        assert merges["hybrid"] == 1

    def test_interval_one_behaves_like_full_walks(self):
        pm, scanner = make_scanner(
            scan_policy="hybrid", hybrid_full_interval=1
        )
        tables = [PageTable(f"t{i}") for i in range(2)]
        for table in tables:
            scanner.register(table)
        _populate(pm, tables)
        stats = scanner.run_until_converged(max_passes=8)
        _pm2, full = make_scanner(scan_policy="full")
        tables2 = [PageTable(f"t{i}") for i in range(2)]
        for table in tables2:
            full.register(table)
        _populate(_pm2, tables2)
        full_stats = full.run_until_converged(max_passes=8)
        assert stats.pages_saved == full_stats.pages_saved
        assert stats.merges == full_stats.merges


class TestRegisterSeedsRecheck:
    """Regression tests: ``register`` must treat every page the table
    already maps as a merge candidate (madvise(MERGEABLE) semantics).
    The dirty log only covers later writes, so an INCREMENTAL scanner
    that relies on it alone settles below the FULL fixpoint whenever a
    table arrives with pre-existing content — most visibly after an
    unregister (which drops the pending worklist) and re-register."""

    def test_pre_registration_pages_examined(self):
        pm, scanner = make_scanner(scan_policy="incremental")
        a, b = PageTable("a"), PageTable("b")
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        scanner.register(a)
        scanner.register(b)
        scanner.run_until_converged(max_passes=8)
        assert scanner.stats.merges == 1
        assert a.translate(0) == b.translate(0)

    def test_unregister_reregister_reaches_full_fixpoint(self):
        pm, scanner = make_scanner(scan_policy="incremental")
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        scanner.unregister(b)
        scanner.run_until_converged(max_passes=8)
        assert scanner.stats.merges == 0
        scanner.register(b)
        scanner.run_until_converged(max_passes=8)
        assert scanner.stats.merges == 1
        assert a.translate(0) == b.translate(0)
