"""Property suite for the huge-block overlay and split-on-KSM-merge.

Huge blocks are a pure grouping overlay on the host page table —
subpages keep their individual 4 KiB tokens — so the central economic
claim is testable as an exact invariant: a universe that collapses
ranges into huge blocks and then lets KSM split its way through them
converges to *byte-identical* sharing as an all-4 KiB twin.  Hypothesis
drives random contents and block layouts through that round-trip, checks
that collapse never absorbs a KSM-shared page, and runs the object and
batch engines in lockstep over huge-backed universes (including the
``REPRO_NO_NUMPY=1`` stdlib fallback).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.validate import validate_thp
from repro.ksm.batch import BatchKsmScanner
from repro.ksm.scanner import KsmConfig, KsmScanner
from repro.mem.address_space import PageTable
from repro.mem.physmem import HostPhysicalMemory
from repro.sim.clock import SimClock

BLOCK = 4
N_RANGES = 8
N_VPNS = BLOCK * N_RANGES
N_TOKENS = 5


def build_universe(tokens, block_ranges=(), engine="object", backend=None):
    """One table mapped with ``tokens``, huge blocks over the ranges."""
    physmem = HostPhysicalMemory(capacity_bytes=1 << 26, page_size=4096)
    if engine == "object":
        scanner = KsmScanner(physmem, SimClock(), KsmConfig())
    else:
        scanner = BatchKsmScanner(
            physmem, SimClock(), KsmConfig(), columnar_backend=backend
        )
    table = PageTable("t0")
    for vpn, token in enumerate(tokens):
        physmem.map_token(table, vpn, token)
    for index in sorted(block_ranges):
        bid = physmem.form_block(table, index * BLOCK, BLOCK)
        assert bid is not None  # fresh refcount-1 frames always collapse
    scanner.register(table)
    return physmem, scanner, table


tokens_strategy = st.lists(
    st.integers(1, N_TOKENS), min_size=N_VPNS, max_size=N_VPNS
)
ranges_strategy = st.sets(st.integers(0, N_RANGES - 1))


class TestSplitRemergeRoundTrip:
    @given(tokens=tokens_strategy, block_ranges=ranges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_savings_identical_to_all_4k(self, tokens, block_ranges):
        """Splitting for KSM round-trips to the all-4KiB savings."""
        physmem, scanner, table = build_universe(tokens, block_ranges)
        ref_pm, ref, ref_table = build_universe(tokens)
        scanner.run_until_converged(max_passes=8)
        ref.run_until_converged(max_passes=8)
        assert scanner.saved_bytes == ref.saved_bytes
        assert physmem.frames_in_use == ref_pm.frames_in_use
        assert table.snapshot() == ref_table.snapshot()
        assert {
            vpn: physmem.read_token(table, vpn)
            for vpn, _ in table.entries()
        } == {
            vpn: ref_pm.read_token(ref_table, vpn)
            for vpn, _ in ref_table.entries()
        }
        assert ref.stats.thp_splits == 0
        report = validate_thp(physmem)
        assert report.ok, report.render()

    @given(tokens=tokens_strategy, block_ranges=ranges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_no_merged_page_inside_intact_block(self, tokens, block_ranges):
        """After convergence every intact block holds private frames."""
        physmem, scanner, table = build_universe(tokens, block_ranges)
        scanner.run_until_converged(max_passes=8)
        for block in physmem.iter_blocks():
            for fid in block.fids:
                frame = physmem.frame(fid)
                assert frame is not None
                assert not frame.ksm_stable
                assert frame.refcount == 1
                assert frame.block == block.bid
        assert (
            physmem.blocks_formed - physmem.blocks_split
            == physmem.blocks_intact
        )


class TestCollapseEligibility:
    @given(tokens=tokens_strategy, block_ranges=ranges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_collapse_never_absorbs_shared_page(self, tokens, block_ranges):
        """form_block refuses every range that contains a stable frame."""
        physmem, scanner, table = build_universe(tokens)
        scanner.run_until_converged(max_passes=8)
        formed_before = physmem.blocks_formed
        for index in sorted(block_ranges):
            base = index * BLOCK
            vpns = range(base, base + BLOCK)
            shareable = any(
                (frame := physmem.frame(table.translate(vpn))) is not None
                and (frame.ksm_stable or frame.refcount != 1)
                for vpn in vpns
                if table.is_mapped(vpn)
            )
            bid = physmem.form_block(table, base, BLOCK)
            if shareable:
                assert bid is None
            if bid is not None:
                for vpn in vpns:
                    frame = physmem.frame(table.translate(vpn))
                    assert not frame.ksm_stable and frame.refcount == 1
        assert physmem.blocks_formed >= formed_before
        report = validate_thp(physmem)
        assert report.ok, report.render()


class TestEngineLockstepWithHugePages:
    @given(tokens=tokens_strategy, block_ranges=ranges_strategy)
    @settings(max_examples=40, deadline=None)
    def test_object_vs_batch(self, tokens, block_ranges):
        """Identical merges *and* identical thp_splits, either engine."""
        obj_pm, obj, obj_table = build_universe(
            tokens, block_ranges, engine="object"
        )
        bat_pm, bat, bat_table = build_universe(
            tokens, block_ranges, engine="batch"
        )
        obj.run_until_converged(max_passes=8)
        bat.run_until_converged(max_passes=8)
        assert obj.snapshot_stats() == bat.snapshot_stats()
        assert obj.stats.thp_splits == bat.stats.thp_splits
        assert obj_table.snapshot() == bat_table.snapshot()
        assert obj_pm.frames_in_use == bat_pm.frames_in_use
        assert obj_pm.blocks_intact == bat_pm.blocks_intact
        assert (
            obj_pm.block_splits_by_reason == bat_pm.block_splits_by_reason
        )

    def test_lockstep_without_numpy(self, monkeypatch):
        """The stdlib fallback splits and merges identically too."""
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        tokens = [(vpn % 3) + 1 for vpn in range(N_VPNS)]
        ranges = set(range(0, N_RANGES, 2))
        obj_pm, obj, _ = build_universe(tokens, ranges, engine="object")
        bat_pm, bat, _ = build_universe(tokens, ranges, engine="batch")
        obj.run_until_converged(max_passes=8)
        bat.run_until_converged(max_passes=8)
        assert obj.snapshot_stats() == bat.snapshot_stats()
        assert obj.stats.thp_splits == bat.stats.thp_splits > 0
        assert obj_pm.blocks_intact == bat_pm.blocks_intact


class TestBlockMechanics:
    def test_split_is_idempotent(self):
        physmem, _, table = build_universe([1, 2, 3, 4] * N_RANGES, {0})
        (block,) = list(physmem.iter_blocks())
        assert physmem.split_block(block.bid) is True
        assert physmem.split_block(block.bid) is False
        assert physmem.blocks_intact == 0
        assert physmem.blocks_split == 1

    def test_unmap_auto_splits(self):
        """Freeing any subpage dissolves the block (reason 'free')."""
        physmem, _, table = build_universe(
            list(range(1, N_VPNS + 1)), {0}
        )
        physmem.unmap(table, 0)
        assert physmem.blocks_intact == 0
        assert physmem.block_splits_by_reason == {"free": 1}

    def test_stable_marking_inside_block_is_refused(self):
        physmem, _, table = build_universe([1, 2, 3, 4] * N_RANGES, {0})
        fid = table.translate(0)
        with pytest.raises(ValueError):
            physmem.mark_ksm_stable(fid)

    def test_validate_thp_flags_shared_frame_in_block(self):
        """A corrupted overlay is caught by the ERROR-level checks."""
        physmem, _, table = build_universe([1, 2, 3, 4] * N_RANGES, {0})
        fid = table.translate(0)
        physmem.frame(fid).ksm_stable = True  # bypass the guard
        report = validate_thp(physmem)
        assert not report.ok
        assert "thp-shared-in-block" in report.codes()


class TestScenarioLevel:
    KWARGS = dict(scale=0.02, measurement_ticks=2, seed=20130421)

    def _spec(self, policy, engine="object"):
        from repro.config import (
            HugePageSettings,
            KsmSettings,
            ScenarioSpec,
        )

        hugepages = (
            HugePageSettings()
            if policy == "never"
            else HugePageSettings(policy=policy, block_pages=16)
        )
        return ScenarioSpec(
            scenario="daytrader4",
            ksm=KsmSettings(scan_engine=engine),
            hugepages=hugepages,
            **self.KWARGS,
        )

    @pytest.mark.parametrize("policy", ["always", "khugepaged"])
    def test_savings_survive_thp(self, policy):
        """Scenario savings are policy-invariant; only the splits vary."""
        from repro.core.experiments.scenarios import run

        base = run(self._spec("never"))
        huge = run(self._spec(policy))
        assert huge.ksm_stats.pages_saved == base.ksm_stats.pages_saved
        assert huge.ksm_stats.merges == base.ksm_stats.merges
        assert base.ksm_stats.thp_splits == 0
        assert huge.ksm_stats.thp_splits > 0
        thp = huge.ksm_stats.extra["thp"]
        assert thp["blocks_formed"] - thp["blocks_split"] == (
            thp["intact_blocks"]
        )
        assert huge.validation_report is not None
        assert huge.validation_report.ok

    def test_khugepaged_splits_less_than_always(self):
        from repro.core.experiments.scenarios import run

        always = run(self._spec("always"))
        khuge = run(self._spec("khugepaged"))
        assert khuge.ksm_stats.thp_splits <= always.ksm_stats.thp_splits

    @pytest.mark.parametrize("policy", ["always", "khugepaged"])
    def test_engines_identical_at_scenario_level(self, policy):
        from repro.core.experiments.scenarios import run

        ref = run(self._spec(policy, engine="object"))
        bat = run(self._spec(policy, engine="batch"))
        assert ref.ksm_stats == bat.ksm_stats
        assert ref.vm_breakdown.rows == bat.vm_breakdown.rows
        assert ref.accounting == bat.accounting

    def test_thp_survives_fault_injection(self):
        """Huge-block validation composes with the fault-plan report."""
        from repro.config import ScenarioSpec
        from repro.core.experiments.scenarios import run
        from repro.faults import FaultPlan

        spec = self._spec("always")
        import dataclasses

        spec = dataclasses.replace(
            spec, faults=FaultPlan.from_spec("1337:0.2")
        )
        result = run(spec)
        assert result.validation_report is not None
        assert "thp-shared-in-block" not in result.validation_report.codes()
        assert "thp-block-accounting" not in result.validation_report.codes()


class TestTradeoffCurve:
    def test_curve_serial_equals_parallel(self, tmp_path):
        from repro.core.experiments.hugepages import run_hugepage_tradeoff

        kwargs = dict(
            scale=0.02,
            measurement_ticks=2,
            block_pages=16,
            scenarios=("daytrader4",),
        )
        serial = run_hugepage_tradeoff(**kwargs)
        parallel = run_hugepage_tradeoff(jobs=2, **kwargs)
        assert serial.to_dict() == parallel.to_dict()
        saved = {
            point.saved_bytes for point in serial.points.values()
        }
        assert len(saved) == 1  # savings are policy-invariant
        never = serial.point("daytrader4", "never")
        always = serial.point("daytrader4", "always")
        assert never.thp_splits == 0 and never.tlb_multiplier == 1.0
        assert always.thp_splits > 0
        assert always.tlb_multiplier > 1.0
        assert always.huge_bytes_sacrificed == (
            always.thp_splits * 16 * 4096
        )
        for point in serial.points.values():
            assert point.validation_codes == []
