"""The §III.A dynamics: what merges, what un-merges, over time.

These tests drive two JVM guests tick by tick with the scanner
interleaved, checking the paper's temporal claims rather than a single
snapshot:

* GC-zeroed heap pages merge — and are "soon modified and divided" when
  allocation reuses them;
* NIO buffers stay merged across ticks (stable content);
* stacks never merge at all (rewritten faster than the scanner passes).
"""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.jvm.jvm import JavaVM
from repro.mem.content import ZERO_TOKEN
from repro.units import MiB

from tests.conftest import tiny_kernel_profile, tiny_workload

PAGE = 4096


@pytest.fixture
def pair():
    """Two identical JVM guests, started and warmed."""
    host = KvmHost(256 * MiB, seed=37)
    workload = tiny_workload(
        profile_overrides={
            "gc_zero_tail_bytes": 64 * 1024,
            "heap_touched_fraction": 0.9,
        },
        jvm_overrides={"heap_bytes": 2 * MiB},
    )
    jvms = []
    for name in ("vm1", "vm2"):
        vm = host.create_guest(name, 16 * MiB)
        kernel = GuestKernel(vm, host.rng.derive("g", name))
        kernel.boot(tiny_kernel_profile())
        jvm = JavaVM(
            kernel.spawn("java"),
            workload.jvm_config,
            workload.profile,
            workload.universe(),
            host.rng.derive("jvm", name),
        )
        jvm.startup()
        jvms.append(jvm)
    host.ksm.run_until_converged(max_passes=6)
    return host, jvms


def heap_shared_mappings(host, jvm):
    """Mappings of the JVM's heap pages that point at stable frames."""
    shared = 0
    vma = jvm.heap.areas[0].vma
    process = jvm.process
    for index in range(vma.npages):
        gfn = process.page_table.translate(vma.vpn_of(index))
        if gfn is None:
            continue
        fid = process.kernel.vm.host_frame_of_gfn(gfn)
        if fid is None:
            continue
        frame = host.physmem.get_frame(fid)
        if frame.ksm_stable and frame.refcount > 1:
            shared += 1
    return shared


class TestHeapDynamics:
    def test_zero_pages_merge_then_divide(self, pair):
        """The full §III.A cycle on one page population."""
        host, jvms = pair
        # After convergence: the GC's zeroed tails are merged.
        shared_before = heap_shared_mappings(host, jvms[0])
        assert shared_before > 0
        # One tick of allocation: most of the zeroed space is reused and
        # the merged pages divide (copy-on-write break).
        for jvm in jvms:
            jvm.tick()
        shared_after_tick = heap_shared_mappings(host, jvms[0])
        assert shared_after_tick < shared_before

    def test_heap_sharing_stays_marginal_at_steady_state(self, pair):
        host, jvms = pair
        for _ in range(3):
            for jvm in jvms:
                jvm.tick()
            host.ksm.run_for_ms(2_000)
        heap_area = jvms[0].heap.areas[0]
        shared = heap_shared_mappings(host, jvms[0])
        assert shared / heap_area.npages < 0.15

    def test_nio_stays_merged_across_ticks(self, pair):
        host, jvms = pair
        nio = jvms[0].work.nio_vma
        process = jvms[0].process

        def nio_shared():
            count = 0
            for index in range(nio.npages):
                gfn = process.page_table.translate(nio.vpn_of(index))
                fid = process.kernel.vm.host_frame_of_gfn(gfn)
                frame = host.physmem.get_frame(fid)
                if frame.ksm_stable and frame.refcount > 1:
                    count += 1
            return count

        assert nio_shared() == nio.npages
        for _ in range(2):
            for jvm in jvms:
                jvm.tick()
            host.ksm.run_for_ms(1_000)
        assert nio_shared() == nio.npages

    def test_stacks_never_merge(self, pair):
        host, jvms = pair
        for _ in range(3):
            for jvm in jvms:
                jvm.tick()
            host.ksm.run_for_ms(1_000)
        process = jvms[0].process
        for vma in jvms[0].stacks.stacks:
            for index in range(vma.npages):
                gfn = process.page_table.translate(vma.vpn_of(index))
                if gfn is None:
                    continue
                fid = process.kernel.vm.host_frame_of_gfn(gfn)
                frame = host.physmem.get_frame(fid)
                assert not (frame.ksm_stable and frame.refcount > 1)
