"""Unit/integration tests for the JavaVM orchestrator."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.jvm.classes import TAG_CACHE
from repro.jvm.jvm import AttachedCache, JavaVM, populate_cache
from repro.units import MiB
from repro.workloads.classsets import ClassUniverse

from tests.conftest import tiny_jvm_config, tiny_profile, tiny_workload

PAGE = 4096


def make_jvm(vm_name="vm1", host=None, cache=None, jvm_config=None,
             workload=None):
    if host is None:
        host = KvmHost(128 * MiB, seed=5)
    workload = workload or tiny_workload()
    vm = host.create_guest(vm_name, 16 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g", vm_name))
    process = kernel.spawn("java")
    config = jvm_config or workload.jvm_config
    if cache is not None:
        config = config.with_sharing(True)
    jvm = JavaVM(
        process,
        config,
        workload.profile,
        workload.universe(),
        host.rng.derive("jvm", vm_name),
        cache=cache,
    )
    return host, jvm


def make_cache(workload, vm_name="image"):
    layout = populate_cache(
        workload.universe(),
        workload.jvm_config.with_sharing(True),
        PAGE,
        creator_id=vm_name,
        rng=KvmHost(MiB, seed=5).rng.derive("pop"),
    )
    backing = layout.as_backing_file("scc-master")
    return AttachedCache(layout=layout, backing=backing)


class TestStartup:
    def test_startup_builds_all_components(self):
        _host, jvm = make_jvm()
        jvm.startup()
        tags = {vma.tag for vma in jvm.process.vmas}
        assert any(tag.startswith("java:code") for tag in tags)
        assert any("class-metadata" in tag for tag in tags)
        assert "java:jit-code" in tags
        assert "java:jit-work" in tags
        assert "java:heap" in tags
        assert any(tag.startswith("java:jvm-work") for tag in tags)
        assert "java:stack" in tags
        assert jvm.resident_bytes() > 0

    def test_double_startup_rejected(self):
        _host, jvm = make_jvm()
        jvm.startup()
        with pytest.raises(RuntimeError):
            jvm.startup()

    def test_tick_before_startup_rejected(self):
        _host, jvm = make_jvm()
        with pytest.raises(RuntimeError):
            jvm.tick()

    def test_cache_without_shareclasses_rejected(self):
        workload = tiny_workload()
        cache = make_cache(workload)
        host = KvmHost(128 * MiB, seed=5)
        vm = host.create_guest("vm1", 16 * MiB)
        kernel = GuestKernel(vm, host.rng.derive("g"))
        process = kernel.spawn("java")
        with pytest.raises(ValueError):
            JavaVM(
                process,
                tiny_jvm_config(share_classes=False),
                workload.profile,
                workload.universe(),
                host.rng.derive("jvm"),
                cache=cache,
            )


class TestTicks:
    def test_ticks_load_runtime_classes(self):
        _host, jvm = make_jvm()
        jvm.startup()
        loaded_at_start = jvm.classes.loaded_count
        for _ in range(6):
            jvm.tick()
        assert jvm.classes.loaded_count > loaded_at_start
        assert jvm.classes.loaded_count == len(jvm.universe)
        assert jvm.ticks_run == 6

    def test_ticks_grow_then_stabilise_footprint(self):
        _host, jvm = make_jvm()
        jvm.startup()
        for _ in range(6):
            jvm.tick()
        stable = jvm.resident_bytes()
        jvm.tick()
        assert jvm.resident_bytes() == stable

    def test_jit_budget_exhausts(self):
        _host, jvm = make_jvm()
        jvm.startup()
        for _ in range(8):
            jvm.tick()
        assert jvm.jit.code_budget_left == 0


class TestCacheAttachment:
    def test_cache_attached_loads_from_cache(self):
        workload = tiny_workload()
        cache = make_cache(workload)
        _host, jvm = make_jvm(cache=cache, workload=workload)
        jvm.startup()
        for _ in range(5):
            jvm.tick()
        cacheable = len(jvm.universe.cacheable_classes())
        assert jvm.classes.loaded_from_cache == cacheable
        assert jvm.cache_attached
        assert jvm.cache_vma is not None
        assert jvm.cache_vma.tag == TAG_CACHE

    def test_app_classes_never_from_cache(self):
        workload = tiny_workload()
        cache = make_cache(workload)
        _host, jvm = make_jvm(cache=cache, workload=workload)
        jvm.startup()
        for _ in range(5):
            jvm.tick()
        app = len(jvm.universe) - len(jvm.universe.cacheable_classes())
        assert jvm.classes.loaded_privately == app

    def test_pid_property(self):
        _host, jvm = make_jvm()
        assert jvm.pid == jvm.process.pid


class TestPopulateCache:
    def test_populate_stores_cacheable_only(self):
        workload = tiny_workload()
        universe = workload.universe()
        layout = populate_cache(
            universe,
            workload.jvm_config.with_sharing(True),
            PAGE,
            creator_id="x",
            rng=KvmHost(MiB, seed=1).rng,
        )
        assert layout.sealed
        assert layout.stored_classes == len(universe.cacheable_classes())

    def test_different_creators_different_layouts(self):
        workload = tiny_workload()
        universe = workload.universe()
        rng = KvmHost(MiB, seed=1).rng
        a = populate_cache(
            universe, workload.jvm_config, PAGE, creator_id="vm1", rng=rng
        )
        b = populate_cache(
            universe, workload.jvm_config, PAGE, creator_id="vm2", rng=rng
        )
        offsets_a = [a.offset_of(c.name) for c in universe.cacheable_classes()]
        offsets_b = [b.offset_of(c.name) for c in universe.cacheable_classes()]
        assert offsets_a != offsets_b
