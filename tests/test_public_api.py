"""The public API surface: exports resolve, are documented, and work."""

import inspect

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_public_callables_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_key_entry_points_present(self):
        assert callable(repro.run_scenario)
        assert callable(repro.run_powervm_experiment)
        assert callable(repro.run_daytrader_consolidation)
        assert callable(repro.run_specj_consolidation)
        assert callable(repro.owner_oriented_accounting)
        assert callable(repro.build_cache_for_image)

    def test_modules_documented(self):
        import repro.core
        import repro.guestos
        import repro.hypervisor
        import repro.jvm
        import repro.ksm
        import repro.mem
        import repro.perf
        import repro.sim
        import repro.workloads

        for module in (
            repro, repro.core, repro.guestos, repro.hypervisor, repro.jvm,
            repro.ksm, repro.mem, repro.perf, repro.sim, repro.workloads,
        ):
            assert module.__doc__


class TestMinimalFlow:
    def test_readme_snippet_works(self):
        """The README quickstart must actually run."""
        from repro import (
            CacheDeployment,
            MemoryCategory,
            ScenarioSpec,
            run,
        )

        result = run(
            ScenarioSpec(
                "daytrader4", CacheDeployment.SHARED_COPY, scale=0.02,
                measurement_ticks=1,
            )
        )
        row = result.java_breakdown.non_primary_rows()[0]
        assert row.shared_fraction(MemoryCategory.CLASS_METADATA) > 0.5

    def test_deprecated_shim_still_runs(self):
        """The pre-1.1 entry point keeps working, with a warning."""
        from repro import CacheDeployment, run_scenario

        with pytest.warns(DeprecationWarning):
            result = run_scenario(
                "daytrader4", CacheDeployment.NONE, scale=0.02,
                measurement_ticks=1,
            )
        assert result.ksm_stats.pages_scanned > 0
