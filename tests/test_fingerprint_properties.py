"""Property-based tests for the Bloom-filter memory fingerprints."""

from hypothesis import given, settings, strategies as st

from repro.datacenter.fingerprint import MemoryFingerprint

token_sets = st.sets(
    st.integers(min_value=1, max_value=2**48), min_size=0, max_size=300
)


class TestBloomProperties:
    @given(tokens=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives(self, tokens):
        """A Bloom filter may lie about presence, never about absence."""
        fingerprint = MemoryFingerprint(bits=1 << 14)
        fingerprint.add_all(tokens)
        assert all(fingerprint.might_contain(token) for token in tokens)

    @given(tokens=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_cardinality_estimate_reasonable(self, tokens):
        fingerprint = MemoryFingerprint(bits=1 << 16)
        fingerprint.add_all(tokens)
        estimate = fingerprint.estimated_cardinality()
        if not tokens:
            assert estimate == 0.0
        else:
            assert 0.5 * len(tokens) <= estimate <= 1.5 * len(tokens) + 5

    @given(a=token_sets, b=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_union_is_commutative(self, a, b):
        fa = MemoryFingerprint(bits=1 << 14)
        fb = MemoryFingerprint(bits=1 << 14)
        fa.add_all(a)
        fb.add_all(b)
        ab = fa.union(fb)
        ba = fb.union(fa)
        assert ab._words == ba._words

    @given(a=token_sets, b=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_intersection_estimate_bounded(self, a, b):
        """|A∩B| estimate never exceeds the smaller set by much, and the
        estimator is symmetric."""
        fa = MemoryFingerprint(bits=1 << 16)
        fb = MemoryFingerprint(bits=1 << 16)
        fa.add_all(a)
        fb.add_all(b)
        estimate = fa.estimate_shared_tokens(fb)
        assert estimate >= 0.0
        assert estimate <= min(len(a), len(b)) * 1.5 + 10
        assert abs(estimate - fb.estimate_shared_tokens(fa)) < 1e-6

    @given(tokens=token_sets)
    @settings(max_examples=30, deadline=None)
    def test_self_intersection_is_cardinality(self, tokens):
        fingerprint = MemoryFingerprint(bits=1 << 16)
        fingerprint.add_all(tokens)
        shared = fingerprint.estimate_shared_tokens(fingerprint)
        estimate = fingerprint.estimated_cardinality()
        assert abs(shared - estimate) < 1e-6


class TestEstimatorProperties:
    """Properties the placement layer relies on (never negative/NaN)."""

    @given(a=token_sets, b=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_union_cardinality_is_monotone(self, a, b):
        """|A ∪ B| estimate is at least max(|A|, |B|) estimates."""
        fa = MemoryFingerprint(bits=1 << 14)
        fb = MemoryFingerprint(bits=1 << 14)
        fa.add_all(a)
        fb.add_all(b)
        union = fa.union(fb).estimated_cardinality()
        assert union >= fa.estimated_cardinality()
        assert union >= fb.estimated_cardinality()

    @given(tokens=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_cardinality_never_negative(self, tokens):
        fingerprint = MemoryFingerprint(bits=1 << 10)
        fingerprint.add_all(tokens)
        assert fingerprint.estimated_cardinality() >= 0.0

    @given(a=token_sets, b=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_shared_estimate_symmetric(self, a, b):
        fa = MemoryFingerprint(bits=1 << 14)
        fb = MemoryFingerprint(bits=1 << 14)
        fa.add_all(a)
        fb.add_all(b)
        assert fa.estimate_shared_tokens(fb) == fb.estimate_shared_tokens(fa)

    @given(a=token_sets, b=token_sets)
    @settings(max_examples=50, deadline=None)
    def test_shared_estimate_clamped_to_min_cardinality(self, a, b):
        """0 ≤ |A ∩ B| estimate ≤ min(|A|, |B|) estimates, never NaN."""
        fa = MemoryFingerprint(bits=1 << 12)
        fb = MemoryFingerprint(bits=1 << 12)
        fa.add_all(a)
        fb.add_all(b)
        shared = fa.estimate_shared_tokens(fb)
        assert shared == shared  # not NaN
        assert 0.0 <= shared
        assert shared <= min(
            fa.estimated_cardinality(), fb.estimated_cardinality()
        )
