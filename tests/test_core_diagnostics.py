"""Unit tests for the dump diagnostics."""

import pytest

from repro.core.categories import MemoryCategory
from repro.core.diagnostics import (
    category_sharing_summary,
    cross_vm_sharing_matrix,
    sharing_histogram,
    zero_page_census,
)
from repro.core.dump import collect_system_dump
from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.mem.content import ZERO_TOKEN
from repro.units import MiB

PAGE = 4096


@pytest.fixture
def env():
    """Three guests: a page shared by all, one by vm1+vm2, zeros, privates."""
    host = KvmHost(64 * MiB, seed=21)
    kernels = {}
    for name in ("vm1", "vm2", "vm3"):
        vm = host.create_guest(name, 4 * MiB)
        kernel = GuestKernel(vm, host.rng.derive("g", name))
        kernels[name] = kernel
        java = kernel.spawn("java")
        heap = java.mmap_anon(8 * PAGE, "java:heap")
        java.write_token(heap, 0, 77)  # shared by all three
        if name != "vm3":
            java.write_token(heap, 1, 88)  # shared by vm1+vm2
        java.write_token(heap, 2, ZERO_TOKEN)  # zeros merge globally
        private_token = 1000 + int(name[-1])  # unique per VM
        java.write_token(heap, 3, private_token)
    host.ksm.run_until_converged()
    dump = collect_system_dump(host, kernels)
    return host, dump


class TestHistogram:
    def test_buckets(self, env):
        _host, dump = env
        histogram = sharing_histogram(dump)
        assert histogram.get(3, 0) >= 2  # the 77-frame and the zero frame
        assert histogram.get(2, 0) >= 1  # the 88-frame
        assert histogram.get(1, 0) >= 1  # private pages

    def test_total_matches_frames(self, env):
        _host, dump = env
        histogram = sharing_histogram(dump)
        from repro.core.accounting import build_frame_usage

        assert sum(histogram.values()) == len(build_frame_usage(dump))


class TestMatrix:
    def test_pairwise_sharing(self, env):
        _host, dump = env
        matrix = cross_vm_sharing_matrix(dump)
        # vm1-vm2 share the 77-frame, the 88-frame and the zero frame.
        assert matrix[("vm1", "vm2")] == 3 * PAGE
        # vm1-vm3 share 77 and the zero frame only.
        assert matrix[("vm1", "vm3")] == 2 * PAGE
        assert matrix[("vm2", "vm3")] == 2 * PAGE

    def test_empty_world(self):
        host = KvmHost(16 * MiB, seed=1)
        vm = host.create_guest("vm1", MiB)
        kernel = GuestKernel(vm, host.rng.derive("g"))
        dump = collect_system_dump(host, {"vm1": kernel})
        assert cross_vm_sharing_matrix(dump) == {}


class TestZeroCensus:
    def test_counts(self, env):
        _host, dump = env
        census = zero_page_census(dump)
        assert census.zero_frames == 1  # merged into one frame
        assert census.zero_mappings == 3
        assert census.shared_nonzero_frames >= 2
        assert 0 < census.zero_fraction_of_frames < 1

    def test_empty(self):
        host = KvmHost(16 * MiB, seed=1)
        vm = host.create_guest("vm1", MiB)
        kernel = GuestKernel(vm, host.rng.derive("g"))
        dump = collect_system_dump(host, {"vm1": kernel})
        census = zero_page_census(dump)
        assert census.total_frames == 0
        assert census.zero_fraction_of_frames == 0.0


class TestCategorySummary:
    def test_heap_sharing_summarised(self, env):
        _host, dump = env
        summary = category_sharing_summary(dump)
        total, shared = summary[MemoryCategory.JAVA_HEAP]
        # vm1 and vm2 map 4 heap pages each, vm3 maps 3.
        assert total == 11 * PAGE
        # Shared: the 77-frame (3 mappings), 88-frame (2), zero frame (3).
        assert shared == 8 * PAGE
