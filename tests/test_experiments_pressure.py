"""Acceptance tests for the pressure-scenario family (TPS vs §VI)."""

import pytest

from repro.core.experiments.pressure import (
    PRESSURE_ARMS,
    PressureArmRequest,
    run_pressure_arm,
    run_pressure_family,
)

FAMILY_KWARGS = dict(
    scenario="daytrader4",
    scale=0.02,
    measurement_ticks=3,
    seed=11,
    host_ram_fraction=0.6,
    cache=None,
)


@pytest.fixture(scope="module")
def family():
    return run_pressure_family(**FAMILY_KWARGS)


class TestRequest:
    def test_unknown_arm_rejected(self):
        with pytest.raises(ValueError):
            PressureArmRequest(arm="swap")

    def test_bad_ram_fraction_rejected(self):
        with pytest.raises(ValueError):
            PressureArmRequest(arm="ksm", host_ram_fraction=0.0)
        with pytest.raises(ValueError):
            PressureArmRequest(arm="ksm", host_ram_fraction=1.5)

    def test_unknown_family_arm_rejected(self):
        with pytest.raises(ValueError):
            run_pressure_family(arms=("none",), **FAMILY_KWARGS)


class TestFamily:
    def test_all_four_arms_present(self, family):
        assert set(family.arms) == set(PRESSURE_ARMS)

    def test_arms_share_seed_and_host_sizing(self, family):
        assert family.seed == 11
        sizes = {r.host_ram_bytes for r in family.arms.values()}
        assert sizes == {family.baseline.host_ram_bytes}

    def test_every_arm_frees_memory(self, family):
        for arm in PRESSURE_ARMS:
            assert family.physically_freed_bytes[arm] > 0, arm
            assert (
                family.arms[arm].bytes_in_use
                < family.baseline.bytes_in_use
            )

    def test_savings_never_exceed_physically_freed(self, family):
        """The ISSUE's acceptance bar: with pool bytes charged to the
        host, no arm may claim more than the baseline delta shows."""
        for arm in PRESSURE_ARMS:
            assert family.savings_honest(arm), arm

    def test_validation_clean_on_every_arm(self, family):
        for arm, result in family.arms.items():
            assert result.validation_codes == [], arm

    def test_mechanisms_match_their_arm(self, family):
        ksm = family.arms["ksm"]
        assert ksm.ksm_saved_bytes > 0
        assert ksm.compression_saved_bytes == 0
        assert ksm.balloon_reclaimed_bytes == 0
        compression = family.arms["compression"]
        assert compression.ksm_saved_bytes == 0
        assert compression.compression_saved_bytes > 0
        balloon = family.arms["balloon"]
        assert balloon.ksm_saved_bytes == 0
        assert balloon.balloon_reclaimed_bytes > 0
        combined = family.arms["combined"]
        assert combined.ksm_saved_bytes > 0

    def test_throughput_priced_not_free(self, family):
        for arm, result in family.arms.items():
            assert 0.0 < result.throughput_fraction <= 1.0
            assert result.throughput_fraction == pytest.approx(
                result.paging_penalty * result.tiering_penalty
            )
        # Arms that decompress or balloon must pay a tiering cost.
        assert family.arms["compression"].tiering_penalty < 1.0
        assert family.arms["balloon"].tiering_penalty < 1.0

    def test_to_dict_is_json_ready(self, family):
        import json

        report = family.to_dict()
        assert set(report["arms"]) == set(PRESSURE_ARMS)
        assert report["savings_honest"] == {
            arm: True for arm in PRESSURE_ARMS
        }
        for arm in PRESSURE_ARMS:
            row = report["arms"][arm]
            assert row["claimed_saved_bytes"] == (
                row["ksm_saved_bytes"]
                + row["compression_saved_bytes"]
                + row["balloon_reclaimed_bytes"]
            )
        json.dumps(report)  # must not raise


class TestSingleArm:
    def test_single_arm_reproducible(self):
        request = PressureArmRequest(
            arm="compression", scale=0.02, measurement_ticks=2, seed=11
        )
        first = run_pressure_arm(request)
        second = run_pressure_arm(request)
        assert first == second

    def test_caching_round_trip(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(root=tmp_path)
        kwargs = dict(FAMILY_KWARGS, measurement_ticks=2, cache=cache)
        first = run_pressure_family(**kwargs)
        second = run_pressure_family(**kwargs)  # all hits
        assert first.to_dict() == second.to_dict()
