"""Property-based tests: KSM never corrupts memory, whatever the workload.

Hypothesis drives random write/scan interleavings over several address
spaces and checks the two safety invariants of page sharing:

* **read-your-writes**: the content visible through every mapping is the
  content last written through it (merging is transparent);
* **conservation**: frame refcounts equal live mappings, and physical
  usage never exceeds the logical (unmerged) page count.
"""

from hypothesis import given, settings, strategies as st

from repro.ksm.scanner import KsmConfig, KsmScanner
from repro.mem.address_space import PageTable
from repro.mem.physmem import HostPhysicalMemory
from repro.sim.clock import SimClock
from repro.units import MiB

PAGE = 4096
N_TABLES = 3
N_VPNS = 6
N_TOKENS = 4  # few tokens => plenty of merge opportunities


@st.composite
def workload(draw):
    """A random interleaving of writes and scan bursts."""
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("write"),
                    st.integers(0, N_TABLES - 1),
                    st.integers(0, N_VPNS - 1),
                    st.integers(0, N_TOKENS - 1),
                ),
                st.tuples(
                    st.just("scan"),
                    st.integers(1, 2 * N_TABLES * N_VPNS),
                    st.just(0),
                    st.just(0),
                ),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return steps


class TestKsmSafety:
    @given(steps=workload())
    @settings(max_examples=120, deadline=None)
    def test_reads_always_see_last_write(self, steps):
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        scanner = KsmScanner(pm, SimClock(), KsmConfig(pages_to_scan=16))
        tables = [PageTable(f"t{i}") for i in range(N_TABLES)]
        for table in tables:
            scanner.register(table)
        expected = {}
        for op, a, b, c in steps:
            if op == "write":
                table = tables[a]
                pm.write_token(table, b, c + 1)
                expected[(a, b)] = c + 1
            else:
                scanner.scan_pages(a)
            # Invariant 1: every mapping shows its own last write.
            for (ti, vpn), token in expected.items():
                assert pm.read_token(tables[ti], vpn) == token
            # Invariant 2: refcounts match mappings.
            mappings = sum(len(t) for t in tables)
            refs = sum(f.refcount for f in pm._frames.values())
            assert refs == mappings
            # Invariant 3: merging only ever reduces frames.
            assert pm.frames_in_use <= mappings

    @given(steps=workload())
    @settings(max_examples=60, deadline=None)
    def test_convergence_reaches_minimal_frames(self, steps):
        """After writes stop and the scanner converges, distinct content
        values map 1:1 to frames (maximal merging)."""
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        scanner = KsmScanner(pm, SimClock(), KsmConfig(pages_to_scan=64))
        tables = [PageTable(f"t{i}") for i in range(N_TABLES)]
        for table in tables:
            scanner.register(table)
        expected = {}
        for op, a, b, c in steps:
            if op == "write":
                pm.write_token(tables[a], b, c + 1)
                expected[(a, b)] = c + 1
            else:
                scanner.scan_pages(a)
        scanner.run_until_converged(max_passes=10)
        distinct = len(set(expected.values()))
        if expected:
            assert pm.frames_in_use == distinct
