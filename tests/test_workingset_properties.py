"""Property-based tests for the working-set estimator.

Two invariants the tiering engine relies on:

* **recency soundness** — a hot page was necessarily dirtied within the
  last :meth:`~repro.mem.workingset.WorkingSetEstimator.hot_window_epochs`
  epochs.  The engine compresses/balloons the complement, so a violation
  would let it freeze a page that is actively being written;
* **decay monotonicity** — for the same touch history, a faster-cooling
  estimator (smaller decay) never reports a *larger* working set, so
  tuning decay down can only make tiering more aggressive, never less.
"""

from hypothesis import given, settings, strategies as st

from repro.mem.address_space import PageTable
from repro.mem.workingset import WorkingSetEstimator

PAGE = 4096
N_VPNS = 8

#: A touch history: per epoch, the set of vpns dirtied during it.
history = st.lists(
    st.sets(st.integers(0, N_VPNS - 1), max_size=N_VPNS),
    min_size=1,
    max_size=30,
)


def replay(estimator, table, epochs):
    for touched in epochs:
        for vpn in sorted(touched):
            table.log_dirty(vpn)
        estimator.advance_epoch()


class TestRecencySoundness:
    @given(epochs=history)
    @settings(max_examples=150, deadline=None)
    def test_hot_pages_were_touched_within_window(self, epochs):
        table = PageTable("t")
        est = WorkingSetEstimator(PAGE)
        est.track(table)
        replay(est, table, epochs)
        window = est.hot_window_epochs()
        recent = set()
        for touched in epochs[-window:]:
            recent |= touched
        assert set(est.hot_vpns(table)) <= recent

    @given(epochs=history, quiet=st.integers(0, 10))
    @settings(max_examples=100, deadline=None)
    def test_window_is_a_hard_bound(self, epochs, quiet):
        """After window + quiet untouched epochs nothing stays hot."""
        table = PageTable("t")
        est = WorkingSetEstimator(PAGE)
        est.track(table)
        replay(est, table, epochs)
        for _ in range(est.hot_window_epochs() + quiet):
            est.advance_epoch()
        assert est.hot_vpns(table) == ()
        assert est.wss_bytes() == 0


class TestDecayMonotonicity:
    @given(
        epochs=history,
        decays=st.tuples(
            st.floats(0.05, 0.95), st.floats(0.05, 0.95)
        ).filter(lambda pair: abs(pair[0] - pair[1]) > 1e-3),
    )
    @settings(max_examples=150, deadline=None)
    def test_wss_monotone_in_decay(self, epochs, decays):
        low, high = sorted(decays)
        results = {}
        for decay in (low, high):
            table = PageTable("t")
            est = WorkingSetEstimator(PAGE, decay=decay)
            est.track(table)
            replay(est, table, epochs)
            results[decay] = (set(est.hot_vpns(table)), est.wss_bytes())
        hot_low, wss_low = results[low]
        hot_high, wss_high = results[high]
        assert hot_low <= hot_high
        assert wss_low <= wss_high

    @given(epochs=history)
    @settings(max_examples=100, deadline=None)
    def test_replay_is_deterministic(self, epochs):
        def run():
            table = PageTable("t")
            est = WorkingSetEstimator(PAGE)
            est.track(table)
            replay(est, table, epochs)
            return est.hot_vpns(table), est.wss_bytes()

        assert run() == run()
