"""Tests for the KSM convergence timeline."""

from repro.ksm.scanner import KsmConfig, KsmScanner
from repro.mem.address_space import PageTable
from repro.mem.physmem import HostPhysicalMemory
from repro.sim.clock import SimClock
from repro.units import MiB

PAGE = 4096


def build(pages=50, shared_fraction=0.5):
    pm = HostPhysicalMemory(64 * MiB, PAGE)
    clock = SimClock()
    scanner = KsmScanner(pm, clock, KsmConfig(pages_to_scan=20))
    tables = [PageTable("a"), PageTable("b")]
    for table in tables:
        scanner.register(table)
    for index, table in enumerate(tables):
        for vpn in range(pages):
            if vpn < pages * shared_fraction:
                pm.map_token(table, vpn, 10_000 + vpn)
            else:
                pm.map_token(table, vpn, (index + 1) * 100_000 + vpn)
    return pm, clock, scanner


class TestHistory:
    def test_one_sample_per_full_scan(self):
        _pm, _clock, scanner = build()
        scanner.run_until_converged(max_passes=6)
        assert len(scanner.history) == scanner.stats.full_scans

    def test_sharing_rises_then_plateaus(self):
        """The warm-up shape: merging climbs, then flattens once every
        identical pair has been found."""
        _pm, _clock, scanner = build()
        scanner.run_until_converged(max_passes=8)
        shared_series = [sample[1] for sample in scanner.history]
        assert shared_series == sorted(shared_series)  # monotone rise
        assert shared_series[-1] == shared_series[-2]  # plateau reached
        assert shared_series[-1] == 25  # half of 50 pages, pairwise

    def test_timestamps_monotone(self):
        _pm, _clock, scanner = build()
        scanner.run_until_converged(max_passes=6)
        times = [sample[0] for sample in scanner.history]
        assert times == sorted(times)

    def test_history_reflects_cow_breaks(self):
        pm, _clock, scanner = build(pages=10, shared_fraction=1.0)
        scanner.run_until_converged(max_passes=6)
        peak = scanner.history[-1][2]
        # Break every merge from table a.
        table_a = scanner.registered_tables[0]
        for vpn in range(10):
            pm.write_token(table_a, vpn, 999_000 + vpn)
        scanner.run_until_converged(max_passes=4)
        assert scanner.history[-1][2] < peak
