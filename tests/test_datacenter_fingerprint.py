"""Unit tests for memory fingerprints (Memory Buddies machinery)."""

import pytest

from repro.datacenter.fingerprint import MemoryFingerprint, fingerprint_vm
from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.units import MiB

PAGE = 4096


class TestBloomBasics:
    def test_membership(self):
        fingerprint = MemoryFingerprint(bits=1 << 10)
        fingerprint.add(42)
        assert fingerprint.might_contain(42)

    def test_probably_absent(self):
        fingerprint = MemoryFingerprint(bits=1 << 12)
        fingerprint.add_all(range(1, 20))
        misses = sum(
            1 for token in range(10_000, 10_100)
            if not fingerprint.might_contain(token)
        )
        assert misses > 90  # false positives are rare at this load

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            MemoryFingerprint(bits=1000)  # not a power of two
        with pytest.raises(ValueError):
            MemoryFingerprint(hashes=0)

    def test_incompatible_union_rejected(self):
        a = MemoryFingerprint(bits=1 << 10)
        b = MemoryFingerprint(bits=1 << 12)
        with pytest.raises(ValueError):
            a.union(b)


class TestCardinality:
    def test_estimate_tracks_insertions(self):
        fingerprint = MemoryFingerprint(bits=1 << 14)
        fingerprint.add_all(range(1, 501))
        estimate = fingerprint.estimated_cardinality()
        assert 400 < estimate < 600

    def test_intersection_estimate(self):
        a = MemoryFingerprint(bits=1 << 14)
        b = MemoryFingerprint(bits=1 << 14)
        a.add_all(range(1, 401))  # 1..400
        b.add_all(range(201, 601))  # 201..600; overlap = 200
        shared = a.estimate_shared_tokens(b)
        assert 120 < shared < 280

    def test_disjoint_sets_estimate_near_zero(self):
        a = MemoryFingerprint(bits=1 << 14)
        b = MemoryFingerprint(bits=1 << 14)
        a.add_all(range(1, 201))
        b.add_all(range(10_001, 10_201))
        assert a.estimate_shared_tokens(b) < 60

    def test_union_cardinality(self):
        a = MemoryFingerprint(bits=1 << 14)
        b = MemoryFingerprint(bits=1 << 14)
        a.add_all(range(1, 201))
        b.add_all(range(201, 401))
        union = a.union(b)
        assert 300 < union.estimated_cardinality() < 500


class TestVmFingerprint:
    def test_identical_vms_high_overlap(self):
        host = KvmHost(64 * MiB, seed=31)
        fingerprints = []
        for name in ("vm1", "vm2"):
            vm = host.create_guest(name, 2 * MiB)
            for gfn in range(64):
                vm.write_gfn(gfn, 5_000 + gfn)  # same content both VMs
            fingerprints.append(fingerprint_vm(vm, bits=1 << 12))
        shared = fingerprints[0].estimate_shared_tokens(fingerprints[1])
        assert shared > 40

    def test_different_vms_low_overlap(self):
        host = KvmHost(64 * MiB, seed=31)
        fingerprints = []
        for index, name in enumerate(("vm1", "vm2")):
            vm = host.create_guest(name, 2 * MiB)
            for gfn in range(64):
                vm.write_gfn(gfn, (index + 1) * 100_000 + gfn)
            fingerprints.append(fingerprint_vm(vm, bits=1 << 12))
        shared = fingerprints[0].estimate_shared_tokens(fingerprints[1])
        assert shared < 20

    def test_zero_pages_skipped(self):
        host = KvmHost(64 * MiB, seed=31)
        vm = host.create_guest("vm1", 2 * MiB)
        for gfn in range(32):
            vm.write_gfn(gfn, 0)
        fingerprint = fingerprint_vm(vm)
        assert fingerprint.inserted == 0

    def test_duplicate_tokens_inserted_once(self):
        host = KvmHost(64 * MiB, seed=31)
        vm = host.create_guest("vm1", 2 * MiB)
        for gfn in range(16):
            vm.write_gfn(gfn, 777)
        fingerprint = fingerprint_vm(vm)
        assert fingerprint.inserted == 1
