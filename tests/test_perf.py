"""Unit tests for the paging-penalty and throughput models."""

import pytest

from repro.perf.paging import PagingModel
from repro.perf.throughput import DayTraderThroughputModel, SpecjScoreModel
from repro.units import GiB, MiB


@pytest.fixture
def paging():
    return PagingModel(capacity_bytes=6 * GiB)


class TestPagingModel:
    def test_demand_arithmetic(self, paging):
        demand = paging.demand_bytes(3, 1000 * MiB, 100 * MiB)
        assert demand == paging.host_kernel_bytes + 3000 * MiB - 200 * MiB

    def test_single_vm_no_savings_term(self, paging):
        assert paging.demand_bytes(1, 1000 * MiB, 100 * MiB) == (
            paging.host_kernel_bytes + 1000 * MiB
        )

    def test_zero_vms_rejected(self, paging):
        with pytest.raises(ValueError):
            paging.demand_bytes(0, MiB, 0)

    def test_no_penalty_under_capacity(self, paging):
        assert paging.penalty(4 * GiB, 4, GiB) == 1.0

    def test_cold_pages_absorb_small_overcommit(self, paging):
        slight = paging.capacity_bytes + 100 * MiB
        assert paging.penalty(slight, 8, GiB) == 1.0

    def test_penalty_monotonic_in_demand(self, paging):
        penalties = [
            paging.penalty(paging.capacity_bytes + extra * MiB, 4, GiB)
            for extra in (0, 500, 1000, 2000, 4000)
        ]
        assert penalties == sorted(penalties, reverse=True)
        assert penalties[-1] < 0.05

    def test_penalty_halves_at_tau(self, paging):
        cold = 4 * GiB * paging.cold_fraction_of_guest
        demand = paging.capacity_bytes + cold + paging.tau_bytes
        assert paging.penalty(demand, 4, GiB) == pytest.approx(0.5)

    def test_hot_overcommit(self, paging):
        assert paging.hot_overcommit_bytes(GiB, 1, GiB) == 0.0
        over = paging.hot_overcommit_bytes(7 * GiB, 1, GiB)
        expected = 7 * GiB - paging.capacity_bytes - (
            GiB * paging.cold_fraction_of_guest
        )
        assert over == pytest.approx(expected)


class TestDayTraderModel:
    def test_linear_ramp(self):
        model = DayTraderThroughputModel(base_per_vm=33.0)
        assert model.total_throughput(3, 1.0) == pytest.approx(99.0)

    def test_cpu_cap(self):
        model = DayTraderThroughputModel(base_per_vm=33.0, cpu_cap_total=260)
        assert model.total_throughput(9, 1.0) == pytest.approx(260.0)

    def test_penalty_applies(self):
        model = DayTraderThroughputModel(base_per_vm=33.0)
        assert model.total_throughput(4, 0.5) == pytest.approx(66.0)

    def test_invalid_inputs(self):
        model = DayTraderThroughputModel()
        with pytest.raises(ValueError):
            model.total_throughput(0, 1.0)
        with pytest.raises(ValueError):
            model.total_throughput(1, 0.0)
        with pytest.raises(ValueError):
            model.total_throughput(1, 1.5)


class TestSpecjModel:
    def test_healthy_score(self):
        model = SpecjScoreModel(ejops_per_vm=24.0)
        assert model.score(1.0) == 24.0
        assert model.sla_met(1.0)

    def test_degraded_score_breaks_sla(self):
        model = SpecjScoreModel(ejops_per_vm=24.0)
        assert model.score(0.625) == pytest.approx(15.0)
        assert not model.sla_met(0.625)

    def test_sla_floor_boundary(self):
        model = SpecjScoreModel(sla_penalty_floor=0.85)
        assert model.sla_met(0.85)
        assert not model.sla_met(0.849)

    def test_invalid_penalty(self):
        model = SpecjScoreModel()
        with pytest.raises(ValueError):
            model.score(0.0)
