"""Acceptance: parallel execution is bit-identical to serial.

``jobs=4`` fans work units out over a process pool; nothing about
worker identity, scheduling or completion order may leak into results.
Equality is asserted on the *serialized reports* (the byte-for-byte
text the figures print), the strongest observable the pipeline has.
"""

from repro.core.experiments.consolidation import run_daytrader_consolidation
from repro.core.experiments.scenarios import (
    ScenarioRequest,
    run_scenario_request,
)
from repro.core.preload import CacheDeployment
from repro.core.report import render_series, render_vm_breakdown
from repro.exec.runner import ParallelRunner, WorkUnit

SCALE = 0.02
SWEEP_KWARGS = dict(
    vm_counts=(1, 2, 3),
    footprint_scale=SCALE,
    footprint_guests=2,
    measurement_ticks=2,
    seed=11,
)


def _render_sweep(result):
    lines = [
        render_series(
            "fig7", "guest VMs", result.vm_counts,
            {
                "default": result.series("default"),
                "preloaded": result.series("preloaded"),
            },
        )
    ]
    for label in ("default", "preloaded"):
        footprint = result.footprints[label]
        lines.append(
            f"{label} R={footprint.per_vm_resident_bytes!r} "
            f"S={footprint.per_nonprimary_saving_bytes!r}"
        )
    return "\n".join(lines)


class TestParallelSerialEquality:
    def test_consolidation_sweep_jobs4_equals_jobs1(self):
        serial = run_daytrader_consolidation(jobs=1, **SWEEP_KWARGS)
        parallel = run_daytrader_consolidation(jobs=4, **SWEEP_KWARGS)
        assert _render_sweep(parallel) == _render_sweep(serial)
        # Beyond the rendered series: the measured footprints and every
        # sweep point agree exactly.
        for label in ("default", "preloaded"):
            assert parallel.footprints[label] == serial.footprints[label]
            for a, b in zip(parallel.points[label], serial.points[label]):
                assert a == b

    def test_breakdown_scenarios_jobs4_equal_serial(self):
        requests = [
            ScenarioRequest(
                "daytrader4", deployment, scale=SCALE,
                measurement_ticks=1, seed=7,
            )
            for deployment in (
                CacheDeployment.NONE, CacheDeployment.SHARED_COPY
            )
        ]
        units = [
            WorkUnit(run_scenario_request, (request,), label=str(index))
            for index, request in enumerate(requests)
        ]
        serial = ParallelRunner(jobs=1).map(units)
        parallel = ParallelRunner(jobs=4).map(units)
        for fast, slow in zip(parallel, serial):
            assert render_vm_breakdown(
                fast.vm_breakdown, "cmp"
            ) == render_vm_breakdown(slow.vm_breakdown, "cmp")
            assert fast.ksm_stats.pages_scanned == slow.ksm_stats.pages_scanned
            assert fast.ksm_stats.merges == slow.ksm_stats.merges
