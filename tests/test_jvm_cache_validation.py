"""Tests for shared-cache compatibility validation (J9 build check)."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.jvm.jvm import AttachedCache, JavaVM, populate_cache
from repro.units import MiB

from tests.conftest import tiny_workload

PAGE = 4096


def make_cache(workload, jvm_build_id):
    layout = populate_cache(
        workload.universe(),
        workload.jvm_config.with_sharing(True),
        PAGE,
        creator_id="image",
        rng=KvmHost(MiB, seed=5).rng.derive("pop"),
        jvm_build_id=jvm_build_id,
    )
    return AttachedCache(
        layout=layout, backing=layout.as_backing_file("scc")
    )


def make_jvm(cache, jvm_build_id="ibm-j9-java6-sr9"):
    host = KvmHost(128 * MiB, seed=5)
    workload = tiny_workload()
    vm = host.create_guest("vm1", 16 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g"))
    process = kernel.spawn("java")
    return JavaVM(
        process,
        workload.jvm_config.with_sharing(True),
        workload.profile,
        workload.universe(),
        host.rng.derive("jvm"),
        cache=cache,
        jvm_build_id=jvm_build_id,
    )


class TestCacheValidation:
    def test_matching_build_accepted(self):
        workload = tiny_workload()
        cache = make_cache(workload, "ibm-j9-java6-sr9")
        jvm = make_jvm(cache)
        assert not jvm.cache_rejected
        assert jvm.cache_attached

    def test_mismatched_build_rejected(self):
        """A cache written by another JVM build is refused at attach; the
        VM keeps running and loads classes privately (J9 behaviour)."""
        workload = tiny_workload()
        cache = make_cache(workload, "ibm-j9-java6-sr10")
        jvm = make_jvm(cache, jvm_build_id="ibm-j9-java6-sr9")
        assert jvm.cache_rejected
        assert not jvm.cache_attached
        jvm.startup()
        assert jvm.classes.loaded_from_cache == 0
        assert jvm.classes.loaded_privately > 0

    def test_build_id_changes_header_content(self):
        """Different builds produce different cache headers, so even the
        file content differs — no accidental cross-build page sharing."""
        workload = tiny_workload()
        a = make_cache(workload, "sr9").backing
        b = make_cache(workload, "sr10").backing
        assert a.page_token(0) != b.page_token(0)
