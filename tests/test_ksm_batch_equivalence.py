"""The batch scan engine is bit-identical to the object scanner.

Random op sequences (writes, maps, unmaps, cold hints, scan bursts,
timed runs) drive twin universes — one scanned by the per-page object
engine, one by the columnar batch engine — in lockstep, under all three
scan policies and under both columnar backends.  After every scan the
return value must agree; at the end the complete observable state must:
stats (including scan-cost ``cpu_ms``), convergence history, table
mappings, visible page contents, volatility bookkeeping, frame counts,
COW breaks and unstable candidates.

A scenario-level leg repeats the check through the full testbed,
including under an armed fault-injection plan, and an explicit
``REPRO_NO_NUMPY=1`` leg pins the stdlib fallback selection.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.columnar.backend import numpy_available
from repro.ksm import create_scanner
from repro.ksm.batch import BatchKsmScanner
from repro.ksm.scanner import KsmConfig, KsmScanner, ScanPolicy
from repro.mem.address_space import PageTable
from repro.mem.physmem import HostPhysicalMemory
from repro.sim.clock import SimClock

N_TABLES = 3
N_VPNS = 24
N_TOKENS = 6

POLICIES = [ScanPolicy.FULL, ScanPolicy.INCREMENTAL, ScanPolicy.HYBRID]
BACKENDS = [
    pytest.param(
        "columnar-numpy",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="numpy not available"
        ),
    ),
    "columnar-stdlib",
]


def build_universe(policy, engine, backend=None):
    physmem = HostPhysicalMemory(capacity_bytes=1 << 28, page_size=4096)
    clock = SimClock()
    config = KsmConfig(scan_policy=policy)
    if engine == "object":
        scanner = KsmScanner(physmem, clock, config)
    else:
        scanner = BatchKsmScanner(
            physmem, clock, config, columnar_backend=backend
        )
    tables = []
    for t in range(N_TABLES):
        table = PageTable(f"t{t}")
        for vpn in range(N_VPNS // 2):
            physmem.map_token(table, vpn, (vpn % N_TOKENS) + 1)
        scanner.register(table)
        tables.append(table)
    return physmem, scanner, tables


def apply_op(physmem, scanner, tables, op):
    """Apply one op; returns an observation or None."""
    kind = op[0]
    if kind == "write":
        _, t, vpn, token = op
        table = tables[t]
        if table.is_mapped(vpn):
            physmem.write_token(table, vpn, token)
    elif kind == "map":
        _, t, vpn, token = op
        table = tables[t]
        if not table.is_mapped(vpn):
            physmem.map_token(table, vpn, token)
    elif kind == "unmap":
        _, t, vpn = op
        table = tables[t]
        if table.is_mapped(vpn):
            physmem.unmap(table, vpn)
    elif kind == "hint":
        _, t, vpns = op
        return ("hint", scanner.hint_cold(tables[t], vpns))
    elif kind == "scan":
        return ("scan", scanner.scan_pages(op[1]))
    elif kind == "run_ms":
        stats = scanner.run_for_ms(op[1])
        return ("run_ms", stats.pages_scanned, stats.cpu_ms)
    return None


def observe(physmem, scanner, tables):
    state = {
        "stats": scanner.snapshot_stats(),
        "history": list(scanner.history),
        "frames": physmem.frames_in_use,
        "cow_breaks": physmem.cow_breaks,
        "unstable": scanner.unstable_candidates,
        "saved": scanner.saved_bytes,
        "volatility": [
            scanner.volatility_tracked(t) for t in tables
        ],
    }
    for i, table in enumerate(tables):
        state[f"map{i}"] = table.snapshot()
        state[f"content{i}"] = {
            vpn: physmem.read_token(table, vpn)
            for vpn, _ in table.entries()
        }
    return state


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(0, N_TABLES - 1),
            st.integers(0, N_VPNS - 1),
            st.integers(1, N_TOKENS),
        ),
        st.tuples(
            st.just("map"),
            st.integers(0, N_TABLES - 1),
            st.integers(0, N_VPNS - 1),
            st.integers(1, N_TOKENS),
        ),
        st.tuples(
            st.just("unmap"),
            st.integers(0, N_TABLES - 1),
            st.integers(0, N_VPNS - 1),
        ),
        st.tuples(
            st.just("hint"),
            st.integers(0, N_TABLES - 1),
            st.lists(st.integers(0, N_VPNS - 1), max_size=3),
        ),
        st.tuples(st.just("scan"), st.sampled_from([1, 2, 7, 30, 200])),
        st.tuples(st.just("run_ms"), st.sampled_from([1, 5, 25])),
    ),
    max_size=60,
)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("policy", POLICIES)
@given(ops=ops_strategy)
@settings(max_examples=30, deadline=None)
def test_batch_engine_is_bit_identical(policy, backend, ops):
    ref_pm, ref_sc, ref_tables = build_universe(policy, "object")
    bat_pm, bat_sc, bat_tables = build_universe(policy, "batch", backend)
    for step, op in enumerate(ops):
        ref_obs = apply_op(ref_pm, ref_sc, ref_tables, op)
        bat_obs = apply_op(bat_pm, bat_sc, bat_tables, op)
        assert ref_obs == bat_obs, f"step {step}: {op}"
    ref_state = observe(ref_pm, ref_sc, ref_tables)
    bat_state = observe(bat_pm, bat_sc, bat_tables)
    assert ref_state == bat_state


@pytest.mark.parametrize("backend", BACKENDS)
def test_unregister_reregister_equivalence(backend):
    """Table churn (the trickiest cursor bookkeeping) stays lockstep."""
    script = []
    for burst in ([3, 1, 50], [7, 7], [200], [2, 9, 4]):
        script.append(("scan", burst))

    def run(engine):
        physmem, scanner, tables = build_universe(
            ScanPolicy.INCREMENTAL, engine, backend
        )
        outs = []
        for i, (_, burst) in enumerate(script):
            for b in burst:
                outs.append(scanner.scan_pages(b))
            victim = tables[i % len(tables)]
            scanner.unregister(victim)
            outs.append(scanner.scan_pages(40))
            scanner.register(victim)
            physmem.write_token(victim, 0, 40 + i)
        outs.append(scanner.scan_pages(500))
        return outs, observe(physmem, scanner, tables)

    assert run("object") == run("batch")


def test_no_numpy_forces_stdlib_backend(monkeypatch):
    """REPRO_NO_NUMPY=1 must drop the batch engine to the stdlib ops
    (and keep it equivalent), never error out."""
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    physmem = HostPhysicalMemory(capacity_bytes=1 << 26, page_size=4096)
    scanner = create_scanner(
        physmem, SimClock(), KsmConfig(scan_engine="batch")
    )
    assert isinstance(scanner, BatchKsmScanner)
    assert scanner.columnar_backend == "columnar-stdlib"
    assert not scanner._ops.is_numpy

    table = PageTable("t0")
    for vpn in range(16):
        physmem.map_token(table, vpn, vpn % 3)
    scanner.register(table)
    scanner.scan_pages(100)
    scanner.scan_pages(100)

    ref_pm = HostPhysicalMemory(capacity_bytes=1 << 26, page_size=4096)
    ref = KsmScanner(ref_pm, SimClock(), KsmConfig())
    ref_table = PageTable("t0")
    for vpn in range(16):
        ref_pm.map_token(ref_table, vpn, vpn % 3)
    ref.register(ref_table)
    ref.scan_pages(100)
    ref.scan_pages(100)
    assert scanner.snapshot_stats() == ref.snapshot_stats()
    assert table.snapshot() == ref_table.snapshot()


@pytest.mark.parametrize("scan_policy", ["full", "incremental", "hybrid"])
def test_scenario_level_equivalence(scan_policy):
    """The full testbed produces identical results under either engine."""
    from repro.core.experiments.scenarios import run_scenario

    kwargs = dict(
        scale=0.02, measurement_ticks=2, scan_policy=scan_policy
    )
    ref = run_scenario("daytrader4", **kwargs)
    bat = run_scenario("daytrader4", scan_engine="batch", **kwargs)
    assert ref.ksm_stats == bat.ksm_stats
    assert ref.vm_breakdown.rows == bat.vm_breakdown.rows
    assert ref.java_breakdown.rows == bat.java_breakdown.rows
    assert ref.accounting == bat.accounting


def test_scenario_equivalence_under_faults():
    """Fault-injected collection does not break engine equivalence."""
    from repro.core.experiments.scenarios import run_scenario
    from repro.faults import FaultPlan

    kwargs = dict(scale=0.02, measurement_ticks=2)
    ref = run_scenario(
        "daytrader4", faults=FaultPlan.from_spec("1337:0.2"), **kwargs
    )
    bat = run_scenario(
        "daytrader4",
        faults=FaultPlan.from_spec("1337:0.2"),
        scan_engine="batch",
        **kwargs,
    )
    assert ref.ksm_stats == bat.ksm_stats
    assert ref.vm_breakdown.rows == bat.vm_breakdown.rows
    assert ref.collection_report.render() == bat.collection_report.render()
