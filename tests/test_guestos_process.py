"""Unit tests for guest processes: VMAs, faults, writes, teardown."""

import pytest

from repro.guestos.kernel import GuestKernel, OwnerKind
from repro.guestos.pagecache import BackingFile
from repro.hypervisor.kvm import KvmHost
from repro.units import MiB

PAGE = 4096


@pytest.fixture
def env():
    host = KvmHost(64 * MiB, seed=3)
    vm = host.create_guest("vm1", 4 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g"))
    process = kernel.spawn("proc")
    return host, vm, kernel, process


class TestAnonMappings:
    def test_mmap_reserves_without_backing(self, env):
        _h, _vm, _k, process = env
        vma = process.mmap_anon(3 * PAGE, "heap")
        assert vma.npages == 3
        assert process.resident_bytes() == 0

    def test_write_faults_page_in(self, env):
        _h, _vm, kernel, process = env
        vma = process.mmap_anon(2 * PAGE, "heap")
        process.write_token(vma, 1, 42)
        assert process.read_token(vma, 1) == 42
        assert process.read_token(vma, 0) is None
        assert process.resident_bytes() == PAGE
        gfn = process.page_table.translate(vma.vpn_of(1))
        owner = kernel.owner_of(gfn)
        assert owner.kind is OwnerKind.PROCESS_ANON
        assert owner.pid == process.pid
        assert owner.tag == "heap"

    def test_write_tokens_bulk(self, env):
        _h, _vm, _k, process = env
        vma = process.mmap_anon(4 * PAGE, "heap")
        process.write_tokens(vma, [1, 2, 3], start_page=1)
        assert [process.read_token(vma, i) for i in range(4)] == [
            None, 1, 2, 3,
        ]

    def test_write_overflow_rejected(self, env):
        _h, _vm, _k, process = env
        vma = process.mmap_anon(2 * PAGE, "heap")
        with pytest.raises(ValueError):
            process.write_tokens(vma, [1, 2, 3])

    def test_page_index_bounds(self, env):
        _h, _vm, _k, process = env
        vma = process.mmap_anon(2 * PAGE, "heap")
        with pytest.raises(IndexError):
            process.write_token(vma, 2, 1)

    def test_empty_mapping_rejected(self, env):
        _h, _vm, _k, process = env
        with pytest.raises(ValueError):
            process.mmap_anon(0, "x")

    def test_vmas_do_not_overlap(self, env):
        _h, _vm, _k, process = env
        a = process.mmap_anon(PAGE, "a")
        b = process.mmap_anon(PAGE, "b")
        assert a.end_vpn <= b.start_vpn


class TestFileMappings:
    def test_fault_pulls_from_page_cache(self, env):
        _h, _vm, kernel, process = env
        backing = BackingFile("img:/bin/tool", 2 * PAGE, PAGE)
        vma = process.mmap_file(backing, "text")
        process.fault_file_pages(vma)
        assert process.resident_bytes() == 2 * PAGE
        assert kernel.page_cache.cached_pages == 2
        assert process.read_token(vma, 0) == backing.page_token(0)

    def test_two_processes_share_cache_gfn(self, env):
        _h, _vm, kernel, process = env
        other = kernel.spawn("proc2")
        backing = BackingFile("img:/bin/tool", PAGE, PAGE)
        vma1 = process.mmap_file(backing, "text")
        vma2 = other.mmap_file(backing, "text")
        process.fault_file_pages(vma1)
        other.fault_file_pages(vma2)
        gfn1 = process.page_table.translate(vma1.start_vpn)
        gfn2 = other.page_table.translate(vma2.start_vpn)
        assert gfn1 == gfn2
        assert kernel.page_cache.mapcount("img:/bin/tool", 0) == 2

    def test_partial_fault(self, env):
        _h, _vm, _k, process = env
        backing = BackingFile("img:/lib/big", 4 * PAGE, PAGE)
        vma = process.mmap_file(backing, "text")
        process.fault_file_pages(vma, start_page=1, count=2)
        assert process.resident_bytes() == 2 * PAGE

    def test_write_to_file_mapping_rejected(self, env):
        _h, _vm, _k, process = env
        backing = BackingFile("img:/bin/tool", PAGE, PAGE)
        vma = process.mmap_file(backing, "text")
        with pytest.raises(ValueError):
            process.write_token(vma, 0, 1)

    def test_mapping_beyond_eof_rejected(self, env):
        _h, _vm, _k, process = env
        backing = BackingFile("img:/bin/tool", PAGE, PAGE)
        with pytest.raises(ValueError):
            process.mmap_file(backing, "text", offset_pages=1)

    def test_fault_non_file_vma_rejected(self, env):
        _h, _vm, _k, process = env
        vma = process.mmap_anon(PAGE, "heap")
        with pytest.raises(ValueError):
            process.fault_file_pages(vma)


class TestTeardown:
    def test_munmap_anon_frees_gfns(self, env):
        _h, _vm, kernel, process = env
        vma = process.mmap_anon(2 * PAGE, "heap")
        process.write_token(vma, 0, 1)
        gfn = process.page_table.translate(vma.start_vpn)
        process.munmap(vma)
        assert kernel.owner_of(gfn).kind is OwnerKind.FREE
        assert process.resident_bytes() == 0
        assert vma not in process.vmas

    def test_munmap_file_keeps_page_cache(self, env):
        _h, _vm, kernel, process = env
        backing = BackingFile("img:/bin/tool", PAGE, PAGE)
        vma = process.mmap_file(backing, "text")
        process.fault_file_pages(vma)
        process.munmap(vma)
        assert kernel.page_cache.cached_pages == 1
        assert kernel.page_cache.mapcount("img:/bin/tool", 0) == 0

    def test_munmap_foreign_vma_rejected(self, env):
        _h, _vm, kernel, process = env
        other = kernel.spawn("proc2")
        vma = other.mmap_anon(PAGE, "x")
        with pytest.raises(ValueError):
            process.munmap(vma)

    def test_release_all_kills_process(self, env):
        _h, _vm, _k, process = env
        vma = process.mmap_anon(PAGE, "heap")
        process.write_token(vma, 0, 1)
        process.release_all()
        assert not process.alive
        with pytest.raises(RuntimeError):
            process.mmap_anon(PAGE, "y")


class TestIntrospection:
    def test_iter_mapped(self, env):
        _h, _vm, _k, process = env
        vma = process.mmap_anon(3 * PAGE, "heap")
        process.write_token(vma, 0, 1)
        process.write_token(vma, 2, 2)
        entries = list(process.iter_mapped())
        assert len(entries) == 2
        assert all(entry[2] is vma for entry in entries)

    def test_vma_of_vpn(self, env):
        _h, _vm, _k, process = env
        vma = process.mmap_anon(2 * PAGE, "heap")
        assert process.vma_of_vpn(vma.start_vpn) is vma
        assert process.vma_of_vpn(vma.start_vpn + 5_000) is None

    def test_vma_by_tag(self, env):
        _h, _vm, _k, process = env
        process.mmap_anon(PAGE, "a")
        process.mmap_anon(PAGE, "b")
        process.mmap_anon(PAGE, "a")
        assert len(process.vma_by_tag("a")) == 2
