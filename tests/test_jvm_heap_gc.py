"""Unit tests for the heap areas and GC policy models."""

import pytest

from repro.config import GcPolicy
from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.jvm.gc import GenconGc, OptThruputGc, build_heap
from repro.jvm.heap import HeapArea, UNTOUCHED, ZEROED
from repro.mem.content import ZERO_TOKEN
from repro.units import KiB, MiB

PAGE = 4096


def make_process(vm_name="vm1", seed=3):
    host = KvmHost(128 * MiB, seed=seed)
    vm = host.create_guest(vm_name, 32 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g", vm_name))
    return host, kernel.spawn("java")


class TestHeapArea:
    def test_initial_state(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 8 * PAGE)
        assert area.npages == 8
        assert area.live_pages == 0
        assert area.zero_pages == 0
        assert area.resident_bytes() == 0

    def test_write_live(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 8 * PAGE)
        area.write_live(0, epoch=1)
        assert area.live_pages == 1
        assert process.read_token(area.vma, 0) not in (None, ZERO_TOKEN)

    def test_write_zero(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 8 * PAGE)
        area.write_live(0, epoch=1)
        area.write_zero(0)
        assert area.zero_pages == 1
        assert area.live_pages == 0
        assert process.read_token(area.vma, 0) == ZERO_TOKEN

    def test_zero_idempotent(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 8 * PAGE)
        area.write_zero(0)
        area.write_zero(0)
        assert area.zero_pages == 1

    def test_epoch_changes_token(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 8 * PAGE)
        area.write_live(0, epoch=1)
        first = process.read_token(area.vma, 0)
        area.write_live(0, epoch=2)
        assert process.read_token(area.vma, 0) != first

    def test_rewrite_live_moves_everything(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 8 * PAGE)
        area.fill_live(0, 4, epoch=1)
        before = [process.read_token(area.vma, i) for i in range(4)]
        moved = area.rewrite_live(epoch=2)
        after = [process.read_token(area.vma, i) for i in range(4)]
        assert moved == 4
        assert all(a != b for a, b in zip(after, before))

    def test_zero_tail_takes_top_pages(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 8 * PAGE)
        area.fill_live(0, 6, epoch=1)
        zeroed = area.zero_tail(2)
        assert zeroed == 2
        assert process.read_token(area.vma, 5) == ZERO_TOKEN
        assert process.read_token(area.vma, 4) == ZERO_TOKEN
        assert process.read_token(area.vma, 3) != ZERO_TOKEN

    def test_allocate_from_zeros(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 8 * PAGE)
        area.fill_live(0, 4, epoch=1)
        area.zero_tail(3)
        allocated = area.allocate_from_zeros(2, epoch=2)
        assert allocated == 2
        assert area.zero_pages == 1

    def test_dirty_fraction_samples_live_pages(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 64 * PAGE)
        area.fill_live(0, 64, epoch=1)
        dirtied = area.dirty_fraction(0.5, epoch=2)
        assert 10 < dirtied < 54  # roughly half, deterministic sample

    def test_dirty_zero_fraction(self):
        _host, process = make_process()
        area = HeapArea(process, "flat", 8 * PAGE)
        area.fill_live(0, 8, epoch=1)
        assert area.dirty_fraction(0.0, epoch=2) == 0

    def test_heap_tokens_process_unique(self):
        tokens = []
        for seed, vm_name in ((1, "vm1"), (2, "vm2")):
            _host, process = make_process(vm_name, seed)
            area = HeapArea(process, "flat", 4 * PAGE)
            area.fill_live(0, 4, epoch=1)
            tokens.append(
                {process.read_token(area.vma, i) for i in range(4)}
            )
        assert tokens[0].isdisjoint(tokens[1])


class TestOptThruput:
    def make(self, process, heap_pages=64):
        return OptThruputGc(
            process,
            heap_bytes=heap_pages * PAGE,
            touched_fraction=0.8,
            zero_tail_bytes=4 * PAGE,
            dirty_fraction=0.3,
            gc_period_ticks=2,
        )

    def test_initialize_reaches_footprint(self):
        _host, process = make_process()
        gc = self.make(process)
        gc.initialize()
        assert gc.heap.touched_pages == int(64 * 0.8)
        assert gc.heap.zero_pages > 0  # the post-GC zero tail

    def test_tick_consumes_zeros(self):
        _host, process = make_process()
        gc = self.make(process)
        gc.initialize()
        zeros_before = gc.heap.zero_pages
        gc.tick()
        assert gc.heap.zero_pages < zeros_before

    def test_gc_every_period(self):
        _host, process = make_process()
        gc = self.make(process)
        gc.initialize()
        for _ in range(4):
            gc.tick()
        assert gc.gc_count == 2

    def test_global_gc_moves_objects(self):
        _host, process = make_process()
        gc = self.make(process)
        gc.initialize()
        token_before = process.read_token(gc.heap.vma, 0)
        gc.global_gc()
        assert process.read_token(gc.heap.vma, 0) != token_before
        assert gc.heap.zero_pages >= 4

    def test_resident_stays_within_touched(self):
        _host, process = make_process()
        gc = self.make(process)
        gc.initialize()
        for _ in range(6):
            gc.tick()
        assert gc.heap.touched_pages <= gc.heap.npages
        assert gc.resident_bytes() == gc.heap.touched_pages * PAGE


class TestGencon:
    def make(self, process):
        return GenconGc(
            process,
            nursery_bytes=32 * PAGE,
            tenured_bytes=32 * PAGE,
            touched_fraction=0.75,
            zero_tail_bytes=2 * PAGE,
            dirty_fraction=0.3,
            global_gc_period_ticks=2,
        )

    def test_initialize(self):
        _host, process = make_process()
        gc = self.make(process)
        gc.initialize()
        assert gc.nursery.live_pages == 24  # 0.75 of the nursery
        assert gc.tenured.live_pages == 24

    def test_scavenge_rewrites_nursery(self):
        """Every tick the nursery churns completely — it can never pass
        KSM's stability filter (§V.C / §III.B)."""
        _host, process = make_process()
        gc = self.make(process)
        gc.initialize()
        before = [
            process.read_token(gc.nursery.vma, i) for i in range(24)
        ]
        gc.tick()
        after = [process.read_token(gc.nursery.vma, i) for i in range(24)]
        assert all(a != b for a, b in zip(after, before))
        assert gc.scavenge_count == 1

    def test_global_gc_period(self):
        _host, process = make_process()
        gc = self.make(process)
        gc.initialize()
        for _ in range(4):
            gc.tick()
        assert gc.gc_count == 2
        assert gc.scavenge_count == 4

    def test_resident_spans_both_areas(self):
        _host, process = make_process()
        gc = self.make(process)
        gc.initialize()
        assert gc.resident_bytes() == (24 + 24) * PAGE


class TestBuildHeap:
    def test_builds_optthruput(self):
        _host, process = make_process()
        heap = build_heap(process, GcPolicy.OPTTHRUPUT, 16 * PAGE, 0.8,
                          2 * PAGE, 0.3)
        assert isinstance(heap, OptThruputGc)

    def test_builds_gencon(self):
        _host, process = make_process()
        heap = build_heap(
            process, GcPolicy.GENCON, 16 * PAGE, 0.8, 2 * PAGE, 0.3,
            nursery_bytes=8 * PAGE, tenured_bytes=8 * PAGE,
        )
        assert isinstance(heap, GenconGc)

    def test_gencon_requires_sizes(self):
        _host, process = make_process()
        with pytest.raises(ValueError):
            build_heap(process, GcPolicy.GENCON, 16 * PAGE, 0.8,
                       2 * PAGE, 0.3)
