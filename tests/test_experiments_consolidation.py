"""Integration tests for the consolidation sweeps (scaled Figs. 7–8)."""

import pytest

from repro.core.experiments.consolidation import (
    measure_footprint,
    run_daytrader_consolidation,
    run_specj_consolidation,
)
from repro.core.preload import CacheDeployment
from repro.units import GiB, MiB
from repro.workloads.base import build_workload
from repro.config import Benchmark

SCALE = 0.03


@pytest.fixture(scope="module")
def daytrader():
    return run_daytrader_consolidation(footprint_scale=SCALE)


@pytest.fixture(scope="module")
def specj():
    return run_specj_consolidation(footprint_scale=SCALE)


class TestFootprintMeasurement:
    def test_footprint_scales_back_to_full_size(self):
        workload = build_workload(Benchmark.DAYTRADER)
        footprint = measure_footprint(
            workload, CacheDeployment.NONE, 1 * GiB, scale=SCALE,
            measurement_ticks=2,
        )
        # A 1 GB DayTrader guest maps roughly 1 GB (±20 %).
        assert 800 * MiB < footprint.per_vm_resident_bytes < 1200 * MiB
        assert 0 < footprint.per_nonprimary_saving_bytes < (
            footprint.per_vm_resident_bytes
        )

    def test_preload_increases_saving(self):
        workload = build_workload(Benchmark.DAYTRADER)
        base = measure_footprint(
            workload, CacheDeployment.NONE, 1 * GiB, scale=SCALE,
            measurement_ticks=2,
        )
        preloaded = measure_footprint(
            workload, CacheDeployment.SHARED_COPY, 1 * GiB, scale=SCALE,
            measurement_ticks=2,
        )
        gain = (
            preloaded.per_nonprimary_saving_bytes
            - base.per_nonprimary_saving_bytes
        )
        # The paper reports ≈100 MB of extra sharing per Java process.
        assert 60 * MiB < gain < 160 * MiB

    def test_marginal_vm_cost(self):
        workload = build_workload(Benchmark.DAYTRADER)
        footprint = measure_footprint(
            workload, CacheDeployment.NONE, 1 * GiB, scale=SCALE,
            measurement_ticks=2,
        )
        assert footprint.marginal_vm_bytes == (
            footprint.per_vm_resident_bytes
            - footprint.per_nonprimary_saving_bytes
        )


class TestDayTraderSweep:
    def test_vm_counts(self, daytrader):
        assert daytrader.vm_counts == list(range(1, 10))
        assert set(daytrader.points) == {"default", "preloaded"}

    def test_healthy_ramp_is_linear(self, daytrader):
        for label in ("default", "preloaded"):
            series = daytrader.series(label)
            assert series[2] == pytest.approx(3 * series[0], rel=0.01)

    def test_one_extra_vm(self, daytrader):
        """Fig. 7's headline: the preloaded deployment runs one more VM
        at acceptable performance (7 → 8)."""
        default_max = daytrader.max_acceptable_vms("default")
        preloaded_max = daytrader.max_acceptable_vms("preloaded")
        assert preloaded_max == default_max + 1
        assert default_max == 7

    def test_cliff_shape(self, daytrader):
        """At 8 VMs the default collapses while preloaded stays high; at
        9 VMs both collapse with preloaded still ahead."""
        default = dict(zip(daytrader.vm_counts, daytrader.series("default")))
        preloaded = dict(
            zip(daytrader.vm_counts, daytrader.series("preloaded"))
        )
        assert default[8] < 0.3 * default[7]
        assert preloaded[8] > 3 * default[8]
        assert preloaded[9] > default[9]
        assert preloaded[9] < 0.5 * preloaded[8]

    def test_penalties_monotonic(self, daytrader):
        for label in ("default", "preloaded"):
            penalties = [p.penalty for p in daytrader.points[label]]
            assert penalties == sorted(penalties, reverse=True)


class TestSpecjSweep:
    def test_vm_counts(self, specj):
        assert specj.vm_counts == [5, 6, 7, 8]

    def test_flat_score_while_sla_holds(self, specj):
        """Fig. 8: the score sits at ≈24 while the SLA is met (fixed
        injection rate — no performance peak)."""
        for label in ("default", "preloaded"):
            healthy = [
                p.metric for p in specj.points[label] if p.sla_met
            ]
            assert healthy
            assert all(value == pytest.approx(24.0) for value in healthy)

    def test_one_extra_vm(self, specj):
        """Fig. 8's headline: 6 VMs default, 7 preloaded."""
        default_ok = [p.n_vms for p in specj.points["default"] if p.sla_met]
        preloaded_ok = [
            p.n_vms for p in specj.points["preloaded"] if p.sla_met
        ]
        assert max(default_ok) == 6
        assert max(preloaded_ok) == 7

    def test_default_degrades_at_seven(self, specj):
        points = {p.n_vms: p for p in specj.points["default"]}
        assert not points[7].sla_met
        assert points[7].metric < 24.0
