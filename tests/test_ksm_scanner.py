"""Unit tests for the KSM scanner: the TPS merging state machine."""

import pytest

from repro.ksm.scanner import KsmConfig, KsmScanner
from repro.mem.address_space import PageTable
from repro.mem.content import ZERO_TOKEN
from repro.mem.physmem import HostPhysicalMemory
from repro.sim.clock import SimClock
from repro.units import MiB

PAGE = 4096


def make_scanner(pages_to_scan=1000, sleep=100):
    pm = HostPhysicalMemory(64 * MiB, PAGE)
    clock = SimClock()
    scanner = KsmScanner(
        pm, clock, KsmConfig(pages_to_scan=pages_to_scan, sleep_millisecs=sleep)
    )
    return pm, clock, scanner


def converge(scanner, passes=6):
    return scanner.run_until_converged(max_passes=passes)


class TestRegistration:
    def test_register_twice_rejected(self):
        _pm, _clock, scanner = make_scanner()
        table = PageTable("a")
        scanner.register(table)
        with pytest.raises(ValueError):
            scanner.register(table)

    def test_unregister_unknown_rejected(self):
        _pm, _clock, scanner = make_scanner()
        with pytest.raises(ValueError):
            scanner.unregister(PageTable("a"))

    def test_unregister_stops_scanning(self):
        pm, _clock, scanner = make_scanner()
        table = PageTable("a")
        scanner.register(table)
        pm.map_token(table, 0, 5)
        scanner.unregister(table)
        assert scanner.scan_pages(10) == 0


class TestMerging:
    def test_identical_pages_merge(self):
        pm, _clock, scanner = make_scanner()
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        stats = converge(scanner)
        assert stats.pages_shared == 1
        assert stats.pages_sharing == 2
        assert stats.pages_saved == 1
        assert a.translate(0) == b.translate(0)

    def test_different_pages_do_not_merge(self):
        pm, _clock, scanner = make_scanner()
        a = PageTable("a")
        scanner.register(a)
        pm.map_token(a, 0, 5)
        pm.map_token(a, 1, 6)
        stats = converge(scanner)
        assert stats.pages_shared == 0
        assert pm.frames_in_use == 2

    def test_zero_pages_merge_globally(self):
        pm, _clock, scanner = make_scanner()
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        for vpn in range(4):
            pm.map_token(a, vpn, ZERO_TOKEN)
            pm.map_token(b, vpn, ZERO_TOKEN)
        stats = converge(scanner)
        assert stats.pages_shared == 1
        assert stats.pages_sharing == 8
        assert pm.frames_in_use == 1

    def test_within_table_merge(self):
        pm, _clock, scanner = make_scanner()
        a = PageTable("a")
        scanner.register(a)
        pm.map_token(a, 0, 5)
        pm.map_token(a, 1, 5)
        stats = converge(scanner)
        assert stats.pages_saved == 1

    def test_unregistered_table_not_merged(self):
        pm, _clock, scanner = make_scanner()
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)  # not registered
        converge(scanner)
        assert a.translate(0) != b.translate(0)

    def test_late_page_joins_stable_node(self):
        pm, _clock, scanner = make_scanner()
        a, b, c = PageTable("a"), PageTable("b"), PageTable("c")
        for table in (a, b, c):
            scanner.register(table)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        converge(scanner)
        pm.map_token(c, 0, 5)  # appears after the stable node exists
        stats = converge(scanner)
        assert stats.pages_sharing == 3


class TestVolatility:
    def test_volatile_page_never_merges(self):
        """Pages rewritten between scans fail the checksum-stability test —
        the paper's Java-heap behaviour."""
        pm, _clock, scanner = make_scanner(pages_to_scan=10)
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 1)
        pm.map_token(b, 0, 1)
        for epoch in range(10):
            # Rewrite both pages to the same, but changing, content —
            # faster than the scanner completes a pass, like a GC-churned
            # heap page.
            pm.write_token(a, 0, 100 + epoch)
            pm.write_token(b, 0, 100 + epoch)
            scanner.scan_pages(2)  # one sighting of each page per write
        assert scanner.snapshot_stats().pages_shared == 0
        assert scanner.stats.merges == 0
        assert scanner.stats.volatile_skips > 0

    def test_needs_two_sightings_before_merge(self):
        pm, _clock, scanner = make_scanner()
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        # One partial pass over both pages: candidates are only recorded.
        scanner.scan_pages(2)
        assert scanner.snapshot_stats().pages_shared == 0
        # Second sighting: both stable, they merge.
        scanner.scan_pages(4)
        assert scanner.snapshot_stats().pages_shared == 1


class TestCowBreaking:
    def test_write_to_merged_page_unshares(self):
        pm, _clock, scanner = make_scanner()
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        converge(scanner)
        pm.write_token(a, 0, 99)
        assert a.translate(0) != b.translate(0)
        assert pm.read_token(b, 0) == 5
        stats = scanner.snapshot_stats()
        # The stable frame still exists with one mapper.
        assert stats.pages_sharing == 1

    def test_remerge_after_cow_break(self):
        pm, _clock, scanner = make_scanner()
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        converge(scanner)
        pm.write_token(a, 0, 99)
        pm.write_token(a, 0, 5)  # back to matching content
        stats = converge(scanner)
        assert stats.pages_sharing == 2

    def test_stable_node_pruned_when_all_mappers_leave(self):
        pm, _clock, scanner = make_scanner()
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        converge(scanner)
        pm.write_token(a, 0, 1)
        pm.write_token(b, 0, 2)
        stats = converge(scanner)
        assert stats.pages_shared == 0


class TestTimeAndStats:
    def test_run_cycles_advances_clock(self):
        pm, clock, scanner = make_scanner(pages_to_scan=10, sleep=100)
        table = PageTable("a")
        scanner.register(table)
        pm.map_token(table, 0, 5)
        scanner.run_cycles(10)
        assert clock.now_ms >= 1000

    def test_cpu_percent_calibration_high(self):
        """10 000 pages per 100 ms cycle costs ≈25 % CPU (§II.C)."""
        pm, _clock, scanner = make_scanner(pages_to_scan=10_000, sleep=100)
        table = PageTable("a")
        scanner.register(table)
        for vpn in range(20_000):
            pm.map_token(table, vpn, vpn)
        scanner.run_cycles(10)
        cpu = scanner.snapshot_stats().cpu_percent
        assert 15.0 < cpu < 35.0

    def test_cpu_percent_calibration_low(self):
        """1 000 pages per 100 ms cycle costs ≈2 % CPU (§II.C)."""
        pm, _clock, scanner = make_scanner(pages_to_scan=1_000, sleep=100)
        table = PageTable("a")
        scanner.register(table)
        for vpn in range(5_000):
            pm.map_token(table, vpn, vpn)
        scanner.run_cycles(10)
        cpu = scanner.snapshot_stats().cpu_percent
        assert 1.0 < cpu < 6.0

    def test_full_scans_counted(self):
        pm, _clock, scanner = make_scanner()
        table = PageTable("a")
        scanner.register(table)
        for vpn in range(10):
            pm.map_token(table, vpn, vpn)
        converge(scanner)
        assert scanner.stats.full_scans >= 2

    def test_empty_scan_is_safe(self):
        _pm, _clock, scanner = make_scanner()
        scanner.register(PageTable("empty"))
        assert scanner.scan_pages(100) == 0
        scanner.run_cycles(2)  # must not spin forever

    def test_saved_bytes(self):
        pm, _clock, scanner = make_scanner()
        a, b = PageTable("a"), PageTable("b")
        scanner.register(a)
        scanner.register(b)
        pm.map_token(a, 0, 5)
        pm.map_token(b, 0, 5)
        converge(scanner)
        assert scanner.saved_bytes == PAGE


class TestConfig:
    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            KsmConfig(pages_to_scan=0)
        with pytest.raises(ValueError):
            KsmConfig(sleep_millisecs=0)
