"""Unit tests for the Satori sharing-aware block device (§VI)."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.guestos.pagecache import BackingFile
from repro.hypervisor.kvm import KvmHost
from repro.hypervisor.satori import SatoriRegistry
from repro.units import MiB

PAGE = 4096


def make_host(satori=True):
    host = KvmHost(64 * MiB, seed=13)
    if satori:
        host.enable_satori()
    return host


def make_guest(host, name):
    vm = host.create_guest(name, 4 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g", name))
    return vm, kernel


class TestRegistry:
    def test_first_fill_allocates(self):
        host = make_host()
        vm, kernel = make_guest(host, "vm1")
        backing = BackingFile("img:/block", PAGE, PAGE)
        kernel.page_cache.page_gfn(backing, 0)
        assert host.satori.fills == 1
        assert host.satori.immediate_shares == 0
        assert host.satori.tracked_blocks == 1

    def test_second_fill_shares_immediately(self):
        """Two guests read the same disk block: one frame, no scanning."""
        host = make_host()
        backing = BackingFile("base:/usr/lib/libfoo", PAGE, PAGE)
        for name in ("vm1", "vm2"):
            _vm, kernel = make_guest(host, name)
            kernel.page_cache.page_gfn(backing, 0)
        assert host.satori.immediate_shares == 1
        assert host.physmem.frames_in_use == 1
        assert host.ksm.stats.pages_scanned == 0  # zero scanner work

    def test_shared_fill_is_cow_protected(self):
        host = make_host()
        backing = BackingFile("base:/f", PAGE, PAGE)
        guests = []
        for name in ("vm1", "vm2"):
            vm, kernel = make_guest(host, name)
            gfn = kernel.page_cache.page_gfn(backing, 0)
            guests.append((vm, gfn))
        vm1, gfn1 = guests[0]
        vm2, gfn2 = guests[1]
        vm1.write_gfn(gfn1, 999)  # guest dirties its copy
        assert vm2.read_gfn(gfn2) == backing.page_token(0)
        assert vm1.read_gfn(gfn1) == 999

    def test_kernel_boot_cache_shared_at_fill_time(self):
        """Whole-image benefit: two guests booting from one base image
        share their boot page cache with zero KSM effort."""
        host = make_host()
        from tests.conftest import tiny_kernel_profile

        profile = tiny_kernel_profile()
        for name in ("vm1", "vm2"):
            vm, kernel = make_guest(host, name)
            kernel.boot(profile)
        assert host.satori.immediate_shares >= (
            profile.shared_pagecache_bytes // PAGE
        )

    def test_disabled_by_default(self):
        host = make_host(satori=False)
        backing = BackingFile("base:/f", PAGE, PAGE)
        for name in ("vm1", "vm2"):
            _vm, kernel = make_guest(host, name)
            kernel.page_cache.page_gfn(backing, 0)
        assert host.satori is None
        assert host.physmem.frames_in_use == 2  # KSM would merge later

    def test_enable_is_idempotent(self):
        host = make_host()
        registry = host.satori
        assert host.enable_satori() is registry

    def test_prune_drops_dead_entries(self):
        host = make_host()
        vm, kernel = make_guest(host, "vm1")
        backing = BackingFile("img:/b", PAGE, PAGE)
        gfn = kernel.page_cache.page_gfn(backing, 0)
        vm.release_gfn(gfn)  # frame freed
        assert host.satori.prune() == 1
        assert host.satori.tracked_blocks == 0

    def test_saved_bytes(self):
        host = make_host()
        backing = BackingFile("base:/f", 2 * PAGE, PAGE)
        for name in ("vm1", "vm2", "vm3"):
            _vm, kernel = make_guest(host, name)
            for index in range(2):
                kernel.page_cache.page_gfn(backing, index)
        # 3 guests x 2 pages = 6 fills, 2 frames => 4 immediate shares.
        assert host.satori.saved_bytes() == 4 * PAGE

    def test_ksm_coexists_with_satori(self):
        """Satori-shared frames look like stable frames to KSM; the
        scanner leaves them alone and they stay merged."""
        host = make_host()
        backing = BackingFile("base:/f", PAGE, PAGE)
        for name in ("vm1", "vm2"):
            _vm, kernel = make_guest(host, name)
            kernel.page_cache.page_gfn(backing, 0)
        host.ksm.run_until_converged()
        assert host.physmem.frames_in_use == 1
