"""Unit tests for the Table I–III configuration presets."""

import pytest

from repro.config import (
    DAYTRADER_JVM,
    DAYTRADER_POWER_JVM,
    DAYTRADER_POWER_WORKLOAD,
    DAYTRADER_WORKLOAD,
    GcPolicy,
    GuestConfig,
    HostConfig,
    INTEL_GUEST_1G,
    INTEL_GUEST_SPECJ,
    INTEL_HOST,
    JvmConfig,
    KsmSettings,
    POWER_GUEST,
    POWER_HOST,
    SPECJ_JVM,
    SPECJ_JVM_GENCON,
    SPECJ_WORKLOAD,
    TPCW_JVM,
    TUSCANY_JVM,
    TUSCANY_WORKLOAD,
)
from repro.units import GiB, MiB


class TestTable1Hosts:
    def test_intel_host(self):
        assert INTEL_HOST.ram_bytes == 6 * GiB
        assert INTEL_HOST.hypervisor == "kvm"
        assert INTEL_HOST.debug_kernel

    def test_power_host(self):
        assert POWER_HOST.ram_bytes == 128 * GiB
        assert POWER_HOST.hypervisor == "powervm"

    def test_invalid_hypervisor_rejected(self):
        with pytest.raises(ValueError):
            HostConfig("x", GiB, "cpu", "vmware")

    def test_invalid_ram_rejected(self):
        with pytest.raises(ValueError):
            HostConfig("x", 0, "cpu", "kvm")


class TestTable2Guests:
    def test_intel_guests(self):
        assert INTEL_GUEST_1G.memory_bytes == 1 * GiB
        assert INTEL_GUEST_SPECJ.memory_bytes == int(1.25 * GiB)
        assert INTEL_GUEST_1G.vcpus == 2

    def test_power_guest(self):
        assert POWER_GUEST.memory_bytes == int(3.5 * GiB)
        assert POWER_GUEST.vcpus == 1
        assert not POWER_GUEST.debug_kernel  # AIX: no crash breakdowns

    def test_ksm_defaults_match_paper(self):
        settings = KsmSettings()
        assert settings.pages_to_scan == 1000
        assert settings.sleep_millisecs == 100
        assert settings.warmup_pages_to_scan == 10_000
        assert settings.warmup_minutes == 3.0

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            GuestConfig(memory_bytes=0)


class TestTable3Jvms:
    def test_heap_sizes(self):
        assert DAYTRADER_JVM.heap_bytes == 530 * MiB
        assert SPECJ_JVM.heap_bytes == 730 * MiB
        assert TPCW_JVM.heap_bytes == 512 * MiB
        assert TUSCANY_JVM.heap_bytes == 32 * MiB
        assert DAYTRADER_POWER_JVM.heap_bytes == 1 * GiB

    def test_cache_sizes(self):
        assert DAYTRADER_JVM.shared_cache_bytes == 120 * MiB
        assert TUSCANY_JVM.shared_cache_bytes == 25 * MiB

    def test_gencon_preset(self):
        """§V.C: 530 MB nursery + 200 MB tenured for SPECjEnterprise."""
        assert SPECJ_JVM_GENCON.gc_policy is GcPolicy.GENCON
        assert SPECJ_JVM_GENCON.nursery_bytes == 530 * MiB
        assert SPECJ_JVM_GENCON.tenured_bytes == 200 * MiB

    def test_gencon_requires_area_sizes(self):
        with pytest.raises(ValueError):
            JvmConfig(
                heap_bytes=MiB,
                shared_cache_bytes=MiB,
                gc_policy=GcPolicy.GENCON,
            )

    def test_with_sharing_toggles(self):
        enabled = DAYTRADER_JVM.with_sharing(True)
        assert enabled.share_classes
        assert not DAYTRADER_JVM.share_classes  # original untouched
        assert enabled.heap_bytes == DAYTRADER_JVM.heap_bytes

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            JvmConfig(heap_bytes=0, shared_cache_bytes=MiB)
        with pytest.raises(ValueError):
            JvmConfig(heap_bytes=MiB, shared_cache_bytes=-1)


class TestTable3Drivers:
    def test_client_threads(self):
        assert DAYTRADER_WORKLOAD.client_threads == 12
        assert TUSCANY_WORKLOAD.client_threads == 7
        assert DAYTRADER_POWER_WORKLOAD.client_threads == 25

    def test_specj_injection_rate(self):
        assert SPECJ_WORKLOAD.injection_rate == 15

    def test_tuscany_standalone(self):
        assert not TUSCANY_WORKLOAD.uses_was
        assert DAYTRADER_WORKLOAD.uses_was
