"""Unit and property tests for the host frame table (COW, refcounts)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.address_space import PageTable
from repro.mem.physmem import HostPhysicalMemory
from repro.units import MiB

PAGE = 4096


@pytest.fixture
def pm():
    return HostPhysicalMemory(16 * MiB, PAGE)


@pytest.fixture
def table():
    return PageTable("test")


class TestAlloc:
    def test_alloc_starts_with_one_ref(self, pm):
        fid = pm.alloc(5)
        frame = pm.get_frame(fid)
        assert frame.refcount == 1
        assert frame.token == 5

    def test_fids_never_reused(self, pm):
        fid = pm.alloc(5)
        pm.dec_ref(fid)
        assert pm.alloc(5) != fid

    def test_free_removes_frame(self, pm):
        fid = pm.alloc(5)
        pm.dec_ref(fid)
        assert pm.frame(fid) is None
        with pytest.raises(KeyError):
            pm.get_frame(fid)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HostPhysicalMemory(0, PAGE)
        with pytest.raises(ValueError):
            HostPhysicalMemory(MiB, 0)


class TestMapWrite:
    def test_map_token(self, pm, table):
        fid = pm.map_token(table, 10, 99)
        assert table.translate(10) == fid
        assert pm.read_token(table, 10) == 99

    def test_read_unmapped_is_none(self, pm, table):
        assert pm.read_token(table, 123) is None

    def test_write_unmapped_maps(self, pm, table):
        pm.write_token(table, 3, 7)
        assert pm.read_token(table, 3) == 7

    def test_exclusive_write_mutates_in_place(self, pm, table):
        fid = pm.map_token(table, 1, 5)
        fid2 = pm.write_token(table, 1, 6)
        assert fid2 == fid
        assert pm.read_token(table, 1) == 6
        assert pm.cow_breaks == 0

    def test_shared_write_breaks_cow(self, pm):
        a, b = PageTable("a"), PageTable("b")
        fid = pm.map_token(a, 1, 5)
        pm.share_mapping(b, 7, fid)
        assert pm.get_frame(fid).refcount == 2
        new_fid = pm.write_token(b, 7, 9)
        assert new_fid != fid
        assert pm.read_token(a, 1) == 5  # untouched
        assert pm.read_token(b, 7) == 9
        assert pm.get_frame(fid).refcount == 1
        assert pm.cow_breaks == 1

    def test_write_to_stable_frame_always_cows(self, pm, table):
        fid = pm.map_token(table, 1, 5)
        pm.get_frame(fid).ksm_stable = True
        new_fid = pm.write_token(table, 1, 6)
        assert new_fid != fid
        # The stable frame lost its only mapper and was freed.
        assert pm.frame(fid) is None

    def test_unmap_drops_reference(self, pm, table):
        fid = pm.map_token(table, 1, 5)
        pm.unmap(table, 1)
        assert pm.frame(fid) is None
        assert not table.is_mapped(1)


class TestMerge:
    def test_merge_into(self, pm):
        a, b = PageTable("a"), PageTable("b")
        fid_a = pm.map_token(a, 1, 5)
        fid_b = pm.map_token(b, 2, 5)
        old = pm.merge_into(a, 1, fid_b)
        assert old == fid_a
        assert pm.frame(fid_a) is None
        assert a.translate(1) == fid_b
        assert pm.get_frame(fid_b).refcount == 2

    def test_merge_refuses_different_content(self, pm):
        a, b = PageTable("a"), PageTable("b")
        pm.map_token(a, 1, 5)
        fid_b = pm.map_token(b, 2, 6)
        with pytest.raises(ValueError):
            pm.merge_into(a, 1, fid_b)

    def test_merge_self_is_noop(self, pm, table):
        fid = pm.map_token(table, 1, 5)
        assert pm.merge_into(table, 1, fid) == fid
        assert pm.get_frame(fid).refcount == 1

    def test_merge_unmapped_raises(self, pm, table):
        fid = pm.map_token(table, 1, 5)
        with pytest.raises(KeyError):
            pm.merge_into(table, 99, fid)


class TestStatistics:
    def test_bytes_in_use(self, pm, table):
        pm.map_token(table, 1, 5)
        pm.map_token(table, 2, 5)
        assert pm.bytes_in_use == 2 * PAGE
        assert pm.frames_in_use == 2

    def test_overcommit(self):
        pm = HostPhysicalMemory(2 * PAGE, PAGE)
        table = PageTable("t")
        for vpn in range(3):
            pm.map_token(table, vpn, vpn + 1)
        assert pm.overcommitted_bytes == PAGE
        assert pm.bytes_free == -PAGE

    def test_count_zero_frames(self, pm, table):
        pm.map_token(table, 1, 0)
        pm.map_token(table, 2, 7)
        assert pm.count_zero_frames() == 1


@st.composite
def operations(draw):
    """A random sequence of map/write/unmap/share operations."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["write", "unmap", "share"]),
                st.integers(0, 9),  # vpn
                st.integers(0, 5),  # token
                st.integers(0, 9),  # second vpn (for share)
            ),
            max_size=40,
        )
    )
    return ops


class TestInvariants:
    @given(ops=operations())
    @settings(max_examples=80)
    def test_refcounts_equal_mappings(self, ops):
        """Sum of frame refcounts always equals live page-table entries."""
        pm = HostPhysicalMemory(64 * MiB, PAGE)
        tables = [PageTable("a"), PageTable("b")]
        for op, vpn, token, vpn2 in ops:
            table = tables[vpn % 2]
            if op == "write":
                pm.write_token(table, vpn, token)
            elif op == "unmap":
                if table.is_mapped(vpn):
                    pm.unmap(table, vpn)
            elif op == "share":
                other = tables[(vpn + 1) % 2]
                fid = table.translate(vpn)
                if fid is not None and not other.is_mapped(vpn2):
                    pm.share_mapping(other, vpn2, fid)
            mappings = sum(len(t) for t in tables)
            refs = sum(f.refcount for f in pm._frames.values())
            assert refs == mappings


class TestFramesSnapshot:
    def test_matches_per_frame_probes(self, pm, table):
        fids = [pm.alloc(token) for token in (5, 6, 7)]
        pm.inc_ref(fids[1])
        snapshot = pm.frames_snapshot(fids)
        assert snapshot == {
            fid: (pm.get_frame(fid).token, pm.get_frame(fid).refcount)
            for fid in fids
        }
        assert snapshot[fids[1]][1] == 2

    def test_skips_freed_and_collapses_duplicates(self, pm):
        live = pm.alloc(1)
        freed = pm.alloc(2)
        pm.dec_ref(freed)
        snapshot = pm.frames_snapshot([live, freed, live, live])
        assert snapshot == {live: (1, 1)}

    def test_empty_and_generator_input(self, pm):
        assert pm.frames_snapshot([]) == {}
        fid = pm.alloc(9)
        assert pm.frames_snapshot(f for f in (fid,)) == {fid: (9, 1)}
