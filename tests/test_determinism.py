"""Determinism: the whole pipeline is reproducible bit-for-bit.

The simulator takes no wall-clock input and no global randomness, so two
runs with the same seed must agree on every reported number — and a
different seed must (almost surely) change the layout-jittered details
without changing the qualitative results.
"""

import pytest

from repro.core.categories import MemoryCategory
from repro.core.experiments.scenarios import run_scenario
from repro.core.preload import CacheDeployment

SCALE = 0.03


def summarise(result):
    """A stable digest of everything a figure reports."""
    rows = []
    for row in result.vm_breakdown.rows:
        rows.append(
            (row.vm_name, tuple(sorted(row.usage_bytes.items())),
             tuple(sorted(row.shared_bytes.items())))
        )
    java = []
    for row in result.java_breakdown.rows:
        java.append(
            (
                row.vm_name,
                row.pid,
                tuple(
                    (category.value, cell.usage_bytes, cell.shared_bytes)
                    for category, cell in sorted(
                        row.categories.items(), key=lambda kv: kv[0].value
                    )
                ),
            )
        )
    return rows, java


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_scenario(
            "daytrader4", CacheDeployment.SHARED_COPY, scale=SCALE,
            measurement_ticks=2, seed=42,
        )
        b = run_scenario(
            "daytrader4", CacheDeployment.SHARED_COPY, scale=SCALE,
            measurement_ticks=2, seed=42,
        )
        assert summarise(a) == summarise(b)
        assert a.ksm_stats.pages_scanned == b.ksm_stats.pages_scanned
        assert a.ksm_stats.merges == b.ksm_stats.merges

    def test_different_seed_different_details_same_shape(self):
        a = run_scenario(
            "daytrader4", CacheDeployment.SHARED_COPY, scale=SCALE,
            measurement_ticks=2, seed=42,
        )
        b = run_scenario(
            "daytrader4", CacheDeployment.SHARED_COPY, scale=SCALE,
            measurement_ticks=2, seed=43,
        )
        assert summarise(a) != summarise(b)
        # The qualitative claim survives the seed change.
        for result in (a, b):
            for row in result.java_breakdown.non_primary_rows():
                assert row.shared_fraction(
                    MemoryCategory.CLASS_METADATA
                ) > 0.8
