"""Property tests for the workload scaler used by every fast test run.

The whole point of ``scale_workload`` is that shrunk runs keep the same
*behavioural* parameters (fractions, policies) while all byte quantities
shrink proportionally — otherwise scaled tests would validate a different
system than the full-size benchmarks.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.config import Benchmark
from repro.core.experiments.testbed import (
    scale_kernel_profile,
    scale_workload,
)
from repro.workloads.base import build_workload


factors = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


class TestScaleWorkloadProperties:
    @given(factor=factors)
    @settings(max_examples=30, deadline=None)
    def test_fractions_invariant(self, factor):
        workload = build_workload(Benchmark.DAYTRADER)
        scaled = scale_workload(workload, factor)
        for name in (
            "startup_load_fraction",
            "heap_touched_fraction",
            "heap_dirty_fraction",
        ):
            assert getattr(scaled.profile, name) == getattr(
                workload.profile, name
            )
        assert scaled.jvm_config.gc_policy is workload.jvm_config.gc_policy
        assert scaled.profile.middleware_id == workload.profile.middleware_id

    @given(factor=factors)
    @settings(max_examples=30, deadline=None)
    def test_bytes_scale_proportionally(self, factor):
        workload = build_workload(Benchmark.DAYTRADER)
        scaled = scale_workload(workload, factor)
        for name in (
            "jit_code_bytes",
            "private_work_bytes",
            "code_file_bytes",
        ):
            original = getattr(workload.profile, name)
            value = getattr(scaled.profile, name)
            # Proportional within the 4 KiB floor the scaler enforces.
            assert value >= min(4096, original)
            assert value <= original
            if original * factor > 8192:
                assert abs(value - original * factor) <= 1

    @given(factor=factors)
    @settings(max_examples=30, deadline=None)
    def test_class_counts_never_vanish(self, factor):
        workload = build_workload(Benchmark.TUSCANY_BIGBANK)
        scaled = scale_workload(workload, factor)
        assert scaled.profile.middleware_classes >= 8
        assert scaled.profile.jcl_classes >= 4
        assert scaled.profile.app_classes >= 2
        assert scaled.profile.thread_count >= 2

    @given(factor=factors)
    @settings(max_examples=30, deadline=None)
    def test_cache_still_fits_scaled_classes(self, factor):
        """Scaling must preserve the invariant that the cacheable ROM
        fits the configured cache, or preloaded test runs would silently
        exercise the cache-full path instead."""
        from repro.jvm.sharedcache import HEADER_BYTES

        workload = scale_workload(
            build_workload(Benchmark.DAYTRADER), factor
        )
        universe = workload.universe()
        padded = sum(
            ((cls.rom_bytes + 255) // 256) * 256
            for cls in universe.cacheable_classes()
        )
        assert (
            padded + HEADER_BYTES <= workload.jvm_config.shared_cache_bytes
        )

    @given(factor=factors)
    @settings(max_examples=20, deadline=None)
    def test_kernel_profile_scaling(self, factor):
        profile = scale_kernel_profile(factor)
        assert profile.code_bytes > 0
        assert profile.total_bytes > 0
