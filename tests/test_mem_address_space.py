"""Unit tests for sparse page tables."""

import pytest

from repro.mem.address_space import PageTable


@pytest.fixture
def table():
    return PageTable("unit")


class TestMapping:
    def test_map_and_translate(self, table):
        table.map(5, 100)
        assert table.translate(5) == 100

    def test_unmapped_is_none(self, table):
        assert table.translate(5) is None

    def test_double_map_rejected(self, table):
        table.map(5, 100)
        with pytest.raises(ValueError):
            table.map(5, 101)

    def test_remap(self, table):
        table.map(5, 100)
        assert table.remap(5, 200) == 100
        assert table.translate(5) == 200

    def test_remap_missing_raises(self, table):
        with pytest.raises(KeyError):
            table.remap(5, 1)

    def test_unmap(self, table):
        table.map(5, 100)
        assert table.unmap(5) == 100
        assert not table.is_mapped(5)

    def test_unmap_missing_raises(self, table):
        with pytest.raises(KeyError):
            table.unmap(5)


class TestIntrospection:
    def test_len_and_contains(self, table):
        table.map(1, 10)
        table.map(2, 20)
        assert len(table) == 2
        assert 1 in table
        assert 3 not in table

    def test_entries(self, table):
        table.map(1, 10)
        table.map(2, 20)
        assert dict(table.entries()) == {1: 10, 2: 20}

    def test_snapshot_is_a_copy(self, table):
        table.map(1, 10)
        snap = table.snapshot()
        snap[1] = 99
        assert table.translate(1) == 10

    def test_repr_contains_name(self, table):
        assert "unit" in repr(table)
