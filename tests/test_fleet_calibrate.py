"""Fleet calibration: the analytic savings model vs real batch scans."""

import json

from repro.cli import main
from repro.datacenter.calibrate import (
    calibrate_fleet,
    sample_hosts,
    simulate_host_savings,
)
from repro.datacenter.controller import FleetScenario, run_fleet_scenario
from repro.datacenter.fleet import ImageCatalog, converge_host_savings
from repro.units import GiB

PAGE = 4096


def small_fleet(seed=20130421, hosts=6, vms=18):
    scenario = FleetScenario(
        host_count=hosts,
        vm_count=vms,
        host_ram_bytes=16 * GiB,
        seed=seed,
        horizon_ms=5 * 60_000,
        compare_first_fit=False,
    )
    return run_fleet_scenario(scenario).fleet


def test_simulation_matches_analytic_at_convergence():
    catalog = ImageCatalog.generate(7, image_count=4, family_count=2)
    counts = (("img00", 2), ("img01", 1), ("img02", 1))
    result = simulate_host_savings(catalog.spec, counts, PAGE, seed=7)
    analytic = converge_host_savings(catalog.spec, counts, PAGE)
    assert result["analytic_bytes"] == analytic
    assert result["simulated_bytes"] == analytic
    assert analytic > 0
    assert result["merges"] > 0
    assert 1 <= result["passes"] <= 8


def test_single_vm_host_shares_nothing():
    catalog = ImageCatalog.generate(3, image_count=2, family_count=2)
    counts = (("img01", 1),)
    result = simulate_host_savings(catalog.spec, counts, PAGE, seed=3)
    assert result["analytic_bytes"] == 0
    assert result["simulated_bytes"] == 0


def test_simulated_never_exceeds_analytic():
    # Whatever the pass budget, the scanner can only merge duplicates
    # the analytic fixed point counts (private/volatile filler is
    # unique by construction).
    catalog = ImageCatalog.generate(11, image_count=3, family_count=1)
    counts = (("img00", 3), ("img02", 2))
    for max_passes in (1, 2, 4):
        result = simulate_host_savings(
            catalog.spec, counts, PAGE, seed=11, max_passes=max_passes
        )
        assert 0 <= result["simulated_bytes"] <= result["analytic_bytes"]


def test_sample_hosts_deterministic_and_occupied_only():
    fleet = small_fleet()
    occupied = [host for host in fleet.hosts if host.image_counts]
    everyone = sample_hosts(fleet, len(occupied) + 5, seed=1)
    assert everyone == occupied
    first = sample_hosts(fleet, 2, seed=1)
    second = sample_hosts(fleet, 2, seed=1)
    assert [h.name for h in first] == [h.name for h in second]
    assert len(first) == 2
    assert all(host.image_counts for host in first)


def test_calibrate_fleet_report_and_parallel_identity():
    fleet = small_fleet()
    serial = calibrate_fleet(fleet, sample=3, seed=20130421, jobs=1)
    parallel = calibrate_fleet(fleet, sample=3, seed=20130421, jobs=2)
    assert serial.as_dict() == parallel.as_dict()
    assert serial.sampled == min(3, serial.occupied)
    for row in serial.hosts:
        assert 0 <= row.simulated_bytes <= row.analytic_bytes
    assert serial.aggregate_relative_error == 0.0
    rendered = serial.render()
    assert "aggregate:" in rendered
    assert "calibration:" in rendered


def test_cli_fleet_calibrate_end_to_end(capsys):
    rc = main([
        "fleet", "--hosts", "6", "--vms", "16", "--horizon-minutes", "5",
        "--calibrate", "3", "--json",
    ])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    calibration = report["calibration"]
    assert calibration["sampled_hosts"] >= 1
    assert calibration["analytic_bytes"] == calibration["simulated_bytes"]
    for row in calibration["hosts"]:
        assert 0 <= row["simulated_bytes"] <= row["analytic_bytes"]
