"""Property tests for the scan policies.

Two equivalences are checked against randomly generated workloads:

* ``ScanPolicy.FULL`` is *step-identical* to a naive reference scanner —
  one that re-sorts every worklist, keeps separate stable/unstable dicts
  and has none of the persistent-cursor or token-index machinery.  Both
  run the same op sequence over twin universes; stats, history, table
  contents and frame counts must agree after every step.

* ``INCREMENTAL`` and ``HYBRID`` reach the same ``pages_saved`` fixpoint
  as ``FULL`` once memory is quiescent.
"""

from hypothesis import given, settings, strategies as st

from repro.ksm.scanner import KsmConfig, KsmScanner
from repro.mem.address_space import PageTable
from repro.mem.physmem import HostPhysicalMemory
from repro.sim.clock import SimClock
from repro.units import MiB

PAGE = 4096
N_TABLES = 3
N_VPNS = 5
N_TOKENS = 4


class ReferenceScanner:
    """A deliberately naive KSM model with the intended semantics.

    Rebuilds (and re-sorts) every table worklist from scratch, keeps the
    stable and unstable trees as two separate dicts, and walks tables
    round-robin — no caching, no shared index, no dirty logs.
    """

    def __init__(self, physmem, clock, config):
        self.physmem = physmem
        self.clock = clock
        self.config = config
        self._tables = []
        self._stable = {}
        self._unstable = {}
        self._last_tokens = {}
        self.merges = 0
        self.volatile_skips = 0
        self.stale_drops = 0
        self.full_scans = 0
        self.pages_scanned = 0
        self.history = []
        self._cursor = 0
        self._worklist = []
        self._started = False
        self._examined_this_pass = 0

    def register(self, table):
        if any(t is table for t in self._tables):
            raise ValueError("registered")
        if any(t.name == table.name for t in self._tables):
            raise ValueError("duplicate name")
        self._tables.append(table)
        self._last_tokens[table] = {}

    def unregister(self, table):
        for i, t in enumerate(self._tables):
            if t is table:
                del self._tables[i]
                self._last_tokens.pop(table, None)
                # Kernel semantics: the mm's rmap items leave the
                # unstable tree with it — nothing may later merge
                # against an unregistered table's page.
                for token in [
                    tok
                    for tok, (cand_table, _vpn) in self._unstable.items()
                    if cand_table is table
                ]:
                    del self._unstable[token]
                if i < self._cursor:
                    self._cursor -= 1
                elif i == self._cursor:
                    self._worklist = []
                    self._cursor -= 1
                return
        raise ValueError("not registered")

    def scan_pages(self, budget):
        if budget <= 0 or not self._tables:
            return 0
        examined = 0
        empty_rounds = 0
        while examined < budget:
            if not self._worklist:
                if not self._advance():
                    empty_rounds += 1
                    if empty_rounds > len(self._tables) + 1:
                        break
                    continue
                empty_rounds = 0
            vpn = self._worklist.pop()
            self._examine(self._tables[self._cursor], vpn)
            examined += 1
            self._examined_this_pass += 1
        self.pages_scanned += examined
        return examined

    def _advance(self):
        if not self._started:
            self._started = True
            self._cursor = 0
        else:
            self._cursor += 1
            if self._cursor >= len(self._tables):
                self._cursor = 0
                if self._examined_this_pass > 0:
                    self._examined_this_pass = 0
                    self.full_scans += 1
                    self._unstable.clear()
                    for table in self._tables:
                        last = self._last_tokens[table]
                        for vpn in [
                            v for v in last if not table.is_mapped(v)
                        ]:
                            del last[vpn]
                    self._record_history()
        if self._cursor >= len(self._tables):
            return False
        table = self._tables[self._cursor]
        self._worklist = sorted(
            (vpn for vpn, _ in table.entries()), reverse=True
        )
        return bool(self._worklist)

    def _examine(self, table, vpn):
        fid = table.translate(vpn)
        if fid is None:
            return
        frame = self.physmem.get_frame(fid)
        if frame.ksm_stable:
            return
        token = frame.token
        stable_fid = self._stable.get(token)
        if stable_fid is not None:
            stable_frame = self.physmem.frame(stable_fid)
            if (
                stable_frame is None
                or stable_frame.token != token
                or not stable_frame.ksm_stable
            ):
                del self._stable[token]
            elif stable_fid != fid:
                self.physmem.merge_into(table, vpn, stable_fid)
                self.merges += 1
                return
        last = self._last_tokens[table]
        previous = last.get(vpn)
        last[vpn] = token
        if previous != token:
            self.volatile_skips += 1
            return
        partner = self._unstable.get(token)
        if partner is None:
            self._unstable[token] = (table, vpn)
            return
        partner_table, partner_vpn = partner
        if partner_table is table and partner_vpn == vpn:
            return
        partner_fid = partner_table.translate(partner_vpn)
        if partner_fid is None:
            self.stale_drops += 1
            self._unstable[token] = (table, vpn)
            return
        partner_frame = self.physmem.get_frame(partner_fid)
        if partner_frame.token != token:
            self.stale_drops += 1
            self._unstable[token] = (table, vpn)
            return
        if partner_fid == fid:
            frame.ksm_stable = True
            self._stable[token] = fid
            del self._unstable[token]
            return
        partner_frame.ksm_stable = True
        self._stable[token] = partner_fid
        del self._unstable[token]
        self.physmem.merge_into(table, vpn, partner_fid)
        self.merges += 1

    def _record_history(self):
        shared = 0
        sharing = 0
        for fid in self._stable.values():
            frame = self.physmem.frame(fid)
            if frame is not None and frame.ksm_stable:
                shared += 1
                sharing += frame.refcount
        self.history.append((self.clock.now_ms, shared, sharing))


@st.composite
def op_sequence(draw):
    """Random register/unregister/write/scan interleavings.

    Write-only mutation (no unmaps): unmap-then-remap sequences can
    legitimately differ between implementations in *when* stale history
    is pruned, which is invisible to all exported results but not to the
    step-by-step comparison below.
    """
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("write"),
                    st.integers(0, N_TABLES - 1),
                    st.integers(0, N_VPNS - 1),
                    st.integers(1, N_TOKENS),
                ),
                st.tuples(
                    st.just("scan"),
                    st.integers(1, 2 * N_TABLES * N_VPNS),
                    st.just(0),
                    st.just(0),
                ),
                st.tuples(
                    st.just("unregister"),
                    st.integers(0, N_TABLES - 1),
                    st.just(0),
                    st.just(0),
                ),
                st.tuples(
                    st.just("register"),
                    st.integers(0, N_TABLES - 1),
                    st.just(0),
                    st.just(0),
                ),
            ),
            min_size=1,
            max_size=50,
        )
    )
    return ops


def _build_universe(config):
    pm = HostPhysicalMemory(64 * MiB, PAGE)
    clock = SimClock()
    tables = [PageTable(f"t{i}") for i in range(N_TABLES)]
    return pm, clock, tables


class TestFullPolicyEquivalence:
    @given(ops=op_sequence())
    @settings(max_examples=80, deadline=None)
    def test_full_matches_reference_step_by_step(self, ops):
        pm_p, clock_p, tables_p = _build_universe(None)
        prod = KsmScanner(pm_p, clock_p, KsmConfig(scan_policy="full"))
        pm_r, clock_r, tables_r = _build_universe(None)
        ref = ReferenceScanner(pm_r, clock_r, None)
        registered = [False] * N_TABLES
        for i in range(N_TABLES):
            prod.register(tables_p[i])
            ref.register(tables_r[i])
            registered[i] = True
        for op, a, b, c in ops:
            if op == "write":
                pm_p.write_token(tables_p[a], b, c)
                pm_r.write_token(tables_r[a], b, c)
            elif op == "scan":
                n_p = prod.scan_pages(a)
                n_r = ref.scan_pages(a)
                assert n_p == n_r
            elif op == "unregister":
                if registered[a]:
                    prod.unregister(tables_p[a])
                    ref.unregister(tables_r[a])
                    registered[a] = False
            else:  # register
                if not registered[a]:
                    prod.register(tables_p[a])
                    ref.register(tables_r[a])
                    registered[a] = True
            # Every exported result must agree after every step.
            assert prod.stats.merges == ref.merges
            assert prod.stats.volatile_skips == ref.volatile_skips
            assert prod.stats.stale_drops == ref.stale_drops
            assert prod.stats.full_scans == ref.full_scans
            assert prod.stats.pages_scanned == ref.pages_scanned
            assert prod.history == ref.history
            assert pm_p.frames_in_use == pm_r.frames_in_use
            assert pm_p.cow_breaks == pm_r.cow_breaks
            for table_p, table_r in zip(tables_p, tables_r):
                read_p = {
                    vpn: pm_p.read_token(table_p, vpn)
                    for vpn, _ in table_p.entries()
                }
                read_r = {
                    vpn: pm_r.read_token(table_r, vpn)
                    for vpn, _ in table_r.entries()
                }
                assert read_p == read_r


class TestIncrementalFixpoint:
    @given(ops=op_sequence())
    @settings(max_examples=40, deadline=None)
    def test_policies_agree_on_quiescent_fixpoint(self, ops):
        saved = {}
        for policy in ("full", "incremental", "hybrid"):
            pm, clock, tables = _build_universe(None)
            scanner = KsmScanner(
                pm, clock, KsmConfig(scan_policy=policy)
            )
            registered = [False] * N_TABLES
            for i in range(N_TABLES):
                scanner.register(tables[i])
                registered[i] = True
            for op, a, b, c in ops:
                if op == "write":
                    pm.write_token(tables[a], b, c)
                elif op == "scan":
                    scanner.scan_pages(a)
                elif op == "unregister" and registered[a]:
                    scanner.unregister(tables[a])
                    registered[a] = False
                elif op == "register" and not registered[a]:
                    scanner.register(tables[a])
                    registered[a] = True
            # Quiesce: no more writes, converge fully.
            scanner.run_until_converged(max_passes=16, idle_passes=3)
            stats = scanner.snapshot_stats()
            # Only tokens in still-registered tables can stay merged;
            # compare the end state across policies.
            saved[policy] = stats.pages_saved
        assert saved["incremental"] == saved["full"]
        assert saved["hybrid"] == saved["full"]


class TestUnregisterPurgesUnstable:
    """Regression: a persistent unstable candidate must die with its
    table.  Before the fix, INCREMENTAL/HYBRID kept the candidate after
    ``unregister`` and a later identical page in a *registered* table
    merged against the unregistered mapping, ending one page above the
    FULL fixpoint."""

    def _converged_saved(self, policy):
        pm, clock, tables = _build_universe(None)
        scanner = KsmScanner(pm, clock, KsmConfig(scan_policy=policy))
        for table in tables:
            scanner.register(table)
        pm.write_token(tables[1], 0, 1)
        scanner.scan_pages(1)
        scanner.scan_pages(1)
        scanner.unregister(tables[1])
        pm.write_token(tables[0], 0, 1)
        scanner.run_until_converged(max_passes=16, idle_passes=3)
        return scanner.snapshot_stats().pages_saved

    def test_no_merge_against_unregistered_table(self):
        for policy in ("full", "incremental", "hybrid"):
            assert self._converged_saved(policy) == 0, policy

    def test_unstable_candidates_dropped_on_unregister(self):
        pm, clock, tables = _build_universe(None)
        scanner = KsmScanner(
            pm, clock, KsmConfig(scan_policy="incremental")
        )
        for table in tables:
            scanner.register(table)
        pm.write_token(tables[1], 0, 1)
        # Two sightings: the second passes the volatility filter and
        # plants an unstable candidate for tables[1].
        scanner.scan_pages(len(tables) * 4)
        scanner.scan_pages(len(tables) * 4)
        assert scanner.unstable_candidates >= 1
        scanner.unregister(tables[1])
        assert scanner.unstable_candidates == 0
