"""Unit tests for owner-oriented and distribution-oriented accounting."""

import pytest

from repro.core.accounting import (
    UserKind,
    build_frame_usage,
    distribution_oriented_accounting,
    owner_oriented_accounting,
)
from repro.core.categories import MemoryCategory
from repro.core.dump import collect_system_dump
from repro.guestos.kernel import GuestKernel
from repro.guestos.pagecache import BackingFile
from repro.hypervisor.kvm import KvmHost
from repro.units import KiB, MiB

from tests.conftest import tiny_kernel_profile

PAGE = 4096


def build_env(pid_bases=(400, 300)):
    """Two guests, one java + one daemon each, with a known shared page.

    The java heap page with token 77 is identical in both VMs; everything
    else is distinct.  vm2's java process gets the smaller PID, so it must
    own the shared frame.
    """
    host = KvmHost(64 * MiB, seed=9)
    kernels = {}
    javas = []
    for index, name in enumerate(("vm1", "vm2")):
        vm = host.create_guest(name, 4 * MiB)
        kernel = GuestKernel(
            vm, host.rng.derive("g", name), pid_base=pid_bases[index]
        )
        kernels[name] = kernel
        java = kernel.spawn("java")
        heap = java.mmap_anon(2 * PAGE, "java:heap")
        java.write_token(heap, 0, 77)  # identical across VMs
        java.write_token(heap, 1, 100 + index)  # private
        javas.append(java)
        daemon = kernel.spawn("sshd")
        anon = daemon.mmap_anon(PAGE, "sshd:heap")
        daemon.write_token(anon, 0, 200 + index)
        vm.allocate_overhead(PAGE)
    host.ksm.run_until_converged()
    dump = collect_system_dump(host, kernels)
    return host, dump, javas


class TestFrameUsage:
    def test_every_backed_frame_attributed(self):
        host, dump, _javas = build_env()
        usage = build_frame_usage(dump)
        # Guests' frames: token-77 merged frame + 2 private heap pages +
        # 2 daemon pages + 2 overhead pages = 7 frames.
        assert len(usage) == 7

    def test_process_pages_carry_categories(self):
        _host, dump, _javas = build_env()
        usage = build_frame_usage(dump)
        categories = {
            mapping.category
            for mappings in usage.values()
            for mapping in mappings
        }
        assert MemoryCategory.JAVA_HEAP in categories

    def test_qemu_overhead_is_vm_self(self):
        _host, dump, _javas = build_env()
        usage = build_frame_usage(dump)
        vm_self = [
            mapping
            for mappings in usage.values()
            for mapping in mappings
            if mapping.user.kind is UserKind.VM_SELF
        ]
        assert len(vm_self) == 2


class TestOwnerOriented:
    def test_total_usage_equals_backed_frames(self):
        """Conservation: summed usage is exactly the frames the guests
        occupy — nothing double-counted, nothing lost."""
        _host, dump, _javas = build_env()
        usage = build_frame_usage(dump)
        accounting = owner_oriented_accounting(dump, usage)
        assert accounting.total_usage() == len(usage) * PAGE

    def test_java_smallest_pid_owns_shared_frame(self):
        _host, dump, javas = build_env(pid_bases=(400, 300))
        accounting = owner_oriented_accounting(dump)
        vm1_java = next(
            u for u in accounting.java_users() if u.vm_name == "vm1"
        )
        vm2_java = next(
            u for u in accounting.java_users() if u.vm_name == "vm2"
        )
        # vm2's java (pid 300) owns; vm1's java (pid 400) shares.
        assert accounting.usage_of(vm2_java) == 2 * PAGE
        assert accounting.shared_of(vm2_java) == 0
        assert accounting.usage_of(vm1_java) == PAGE
        assert accounting.shared_of(vm1_java) == PAGE

    def test_owner_preference_flips_with_pids(self):
        _host, dump, _javas = build_env(pid_bases=(300, 400))
        accounting = owner_oriented_accounting(dump)
        vm1_java = next(
            u for u in accounting.java_users() if u.vm_name == "vm1"
        )
        assert accounting.shared_of(vm1_java) == 0

    def test_total_of_user_is_mapped_bytes(self):
        _host, dump, _javas = build_env()
        accounting = owner_oriented_accounting(dump)
        for user in accounting.java_users():
            assert accounting.total_of(user) == 2 * PAGE

    def test_category_cells(self):
        _host, dump, _javas = build_env()
        accounting = owner_oriented_accounting(dump)
        for user in accounting.java_users():
            cell = accounting.category_usage(
                user, MemoryCategory.JAVA_HEAP
            )
            assert cell.total_bytes == 2 * PAGE

    def test_kernel_pages_attributed_to_kernel_user(self):
        host = KvmHost(64 * MiB, seed=9)
        vm = host.create_guest("vm1", 4 * MiB)
        kernel = GuestKernel(vm, host.rng.derive("g"))
        kernel.boot(tiny_kernel_profile())
        dump = collect_system_dump(host, {"vm1": kernel})
        accounting = owner_oriented_accounting(dump)
        kernel_users = [
            u for u in accounting.users() if u.kind is UserKind.KERNEL
        ]
        assert len(kernel_users) == 1
        assert accounting.usage_of(kernel_users[0]) == (
            kernel.allocated_pages() * PAGE
        )

    def test_file_pages_attributed_to_mapping_process(self):
        """A page-cache page mapped by a process belongs to the process
        (that is how the Java code area is accounted)."""
        host = KvmHost(64 * MiB, seed=9)
        vm = host.create_guest("vm1", 4 * MiB)
        kernel = GuestKernel(vm, host.rng.derive("g"))
        java = kernel.spawn("java")
        code = java.mmap_file(
            BackingFile("jdk:lib", PAGE, PAGE), "java:code"
        )
        java.fault_file_pages(code)
        dump = collect_system_dump(host, {"vm1": kernel})
        accounting = owner_oriented_accounting(dump)
        java_user = accounting.java_users()[0]
        cell = accounting.category_usage(java_user, MemoryCategory.CODE)
        assert cell.usage_bytes == PAGE
        kernel_users = [
            u for u in accounting.users() if u.kind is UserKind.KERNEL
        ]
        assert not kernel_users  # nothing left over for the kernel

    def test_java_preferred_over_earlier_daemon(self):
        """A Java process owns shared frames even when a non-Java process
        has a smaller PID (the paper always picks a Java owner)."""
        host = KvmHost(64 * MiB, seed=9)
        vm = host.create_guest("vm1", 4 * MiB)
        kernel = GuestKernel(vm, host.rng.derive("g"), pid_base=100)
        daemon = kernel.spawn("sshd")  # pid 100
        java = kernel.spawn("java")  # pid 101
        anon_d = daemon.mmap_anon(PAGE, "sshd:heap")
        daemon.write_token(anon_d, 0, 55)
        heap = java.mmap_anon(PAGE, "java:heap")
        java.write_token(heap, 0, 55)
        host.ksm.run_until_converged()
        dump = collect_system_dump(host, {"vm1": kernel})
        accounting = owner_oriented_accounting(dump)
        java_user = accounting.java_users()[0]
        assert accounting.usage_of(java_user) == PAGE
        assert accounting.shared_of(java_user) == 0


class TestDistributionOriented:
    def test_pss_splits_shared_page(self):
        _host, dump, _javas = build_env()
        pss = distribution_oriented_accounting(dump)
        java_users = [
            u for u in pss.users() if u.kind is UserKind.JAVA
        ]
        for user in java_users:
            # 1 private page + half of the shared page.
            assert pss.pss_bytes[user] == pytest.approx(1.5 * PAGE)
            assert pss.rss_bytes[user] == 2 * PAGE

    def test_pss_conserves_physical_memory(self):
        _host, dump, _javas = build_env()
        usage = build_frame_usage(dump)
        pss = distribution_oriented_accounting(dump, usage)
        assert pss.total_pss() == pytest.approx(len(usage) * PAGE)

    def test_policies_agree_on_totals(self):
        """Owner-oriented usage and PSS must sum to the same physical
        total — they only distribute it differently (§II.A)."""
        _host, dump, _javas = build_env()
        owner = owner_oriented_accounting(dump)
        pss = distribution_oriented_accounting(dump)
        assert owner.total_usage() == pytest.approx(pss.total_pss())
