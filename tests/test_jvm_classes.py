"""Unit tests for class-metadata loading, segments, and cache attachment."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.guestos.malloc import MallocModel
from repro.hypervisor.kvm import KvmHost
from repro.jvm.classes import ClassMetadata, TAG_CACHE, TAG_SEGMENTS
from repro.jvm.sharedcache import SharedClassCache
from repro.units import MiB
from repro.workloads.classsets import ClassUniverse

from tests.conftest import tiny_profile

PAGE = 4096


def make_env(vm_name="vm1", seed=3, host=None):
    if host is None:
        host = KvmHost(128 * MiB, seed=seed)
    vm = host.create_guest(vm_name, 32 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g", vm_name))
    process = kernel.spawn("java")
    rng = host.rng.derive("jvm", vm_name)
    malloc = MallocModel(process, rng)
    return host, process, malloc, rng


@pytest.fixture
def universe():
    return ClassUniverse(tiny_profile())


class TestPrivateLoading:
    def test_load_allocates_segments(self, universe):
        _host, process, malloc, rng = make_env()
        metadata = ClassMetadata(process, malloc, rng)
        metadata.load_classes(universe.all_classes)
        assert metadata.loaded_count == len(universe)
        assert metadata.loaded_privately == len(universe)
        assert metadata.loaded_from_cache == 0
        assert metadata.segment_count >= 1
        assert process.resident_bytes() > 0

    def test_reload_is_idempotent(self, universe):
        _host, process, malloc, rng = make_env()
        metadata = ClassMetadata(process, malloc, rng)
        classes = universe.all_classes[:5]
        metadata.load_classes(classes)
        before = process.resident_bytes()
        metadata.load_classes(classes)
        assert metadata.loaded_count == 5
        assert process.resident_bytes() == before

    def test_segment_pages_tagged(self, universe):
        _host, process, malloc, rng = make_env()
        metadata = ClassMetadata(process, malloc, rng)
        metadata.load_classes(universe.all_classes[:10])
        tags = {vma.tag for vma in process.vmas}
        assert TAG_SEGMENTS in tags or any(
            TAG_SEGMENTS in tag for tag in tags
        )

    def test_private_layouts_differ_across_processes(self, universe):
        """Same classes, different processes: different page contents —
        the paper's core diagnosis."""
        host = KvmHost(256 * MiB, seed=3)
        page_token_sets = []
        for vm_name in ("vm1", "vm2"):
            _h, process, malloc, rng = make_env(vm_name, host=host)
            metadata = ClassMetadata(process, malloc, rng)
            order = universe.perturbed_order(
                universe.all_classes, rng, who=vm_name
            )
            metadata.load_classes(order)
            tokens = set()
            for _vpn, gfn, _vma in process.iter_mapped():
                tokens.add(process.kernel.vm.read_gfn(gfn))
            page_token_sets.append(tokens)
        overlap = page_token_sets[0] & page_token_sets[1]
        union = page_token_sets[0] | page_token_sets[1]
        assert len(overlap) / len(union) < 0.05


class TestCacheLoading:
    def make_cache(self, universe, process):
        cache = SharedClassCache("c", 4 * MiB, PAGE, creator_id="image")
        cache.populate(universe.all_classes)
        cache.seal()
        backing = cache.as_backing_file("scc-file")
        vma = process.mmap_file(backing, TAG_CACHE)
        return cache, vma

    def test_cached_classes_fault_cache_pages(self, universe):
        _host, process, malloc, rng = make_env()
        cache, vma = self.make_cache(universe, process)
        metadata = ClassMetadata(
            process, malloc, rng, cache=cache, cache_vma=vma
        )
        metadata.load_classes(universe.all_classes)
        assert metadata.loaded_from_cache == len(universe.cacheable_classes())
        assert metadata.loaded_privately == len(universe) - len(
            universe.cacheable_classes()
        )
        assert metadata.faulted_cache_pages > 0

    def test_cache_pages_match_file_content(self, universe):
        _host, process, malloc, rng = make_env()
        cache, vma = self.make_cache(universe, process)
        metadata = ClassMetadata(
            process, malloc, rng, cache=cache, cache_vma=vma
        )
        metadata.load_classes(universe.all_classes)
        cls = universe.cacheable_classes()[0]
        page = next(iter(cache.page_span_of(cls.name)))
        assert process.read_token(vma, page) == vma.backing.page_token(page)

    def test_cache_without_vma_rejected(self, universe):
        _host, process, malloc, rng = make_env()
        cache = SharedClassCache("c", 4 * MiB, PAGE, creator_id="x")
        with pytest.raises(ValueError):
            ClassMetadata(process, malloc, rng, cache=cache, cache_vma=None)

    def test_two_vms_same_cache_file_identical_pages(self, universe):
        """The technique: same cache content => identical faulted pages
        across VMs."""
        host = KvmHost(256 * MiB, seed=3)
        cache = SharedClassCache("c", 4 * MiB, PAGE, creator_id="image")
        cache.populate(universe.all_classes)
        cache.seal()
        master = cache.as_backing_file("master")
        faulted_tokens = []
        for vm_name in ("vm1", "vm2"):
            _h, process, malloc, rng = make_env(vm_name, host=host)
            backing = master.copy_as(f"{vm_name}:scc")
            vma = process.mmap_file(backing, TAG_CACHE)
            metadata = ClassMetadata(
                process, malloc, rng, cache=cache, cache_vma=vma
            )
            order = universe.perturbed_order(
                universe.all_classes, rng, who=vm_name
            )
            metadata.load_classes(order)
            tokens = [
                process.read_token(vma, page)
                for page in range(vma.npages)
                if process.read_token(vma, page) is not None
            ]
            faulted_tokens.append(sorted(tokens))
        assert faulted_tokens[0] == faulted_tokens[1]
