"""Tests for the KVM testbed builder and the workload scaler."""

import pytest

from repro.config import Benchmark, GcPolicy
from repro.core.experiments.testbed import (
    GuestSpec,
    KvmTestbed,
    TestbedConfig,
    scale_kernel_profile,
    scale_workload,
)
from repro.core.preload import CacheDeployment
from repro.units import KiB, MiB
from repro.workloads.base import build_workload

from tests.conftest import tiny_kernel_profile, tiny_workload


def small_config(**overrides):
    values = dict(
        host_ram_bytes=128 * MiB,
        host_kernel_bytes=2 * MiB,
        qemu_overhead_bytes=256 * KiB,
        kernel_profile=tiny_kernel_profile(),
        measurement_ticks=2,
        tick_minutes=0.2,
        scale=0.02,
        seed=11,
    )
    values.update(overrides)
    return TestbedConfig(**values)


def small_specs(n=2):
    workload = tiny_workload()
    return [GuestSpec(f"vm{i + 1}", 16 * MiB, workload) for i in range(n)]


class TestScaleWorkload:
    def test_identity_at_one(self):
        workload = build_workload(Benchmark.DAYTRADER)
        assert scale_workload(workload, 1.0) is workload

    def test_scales_bytes_and_counts(self):
        workload = build_workload(Benchmark.DAYTRADER)
        scaled = scale_workload(workload, 0.1)
        assert scaled.profile.jit_code_bytes == pytest.approx(
            workload.profile.jit_code_bytes * 0.1, rel=0.01
        )
        assert scaled.profile.middleware_classes == pytest.approx(
            workload.profile.middleware_classes * 0.1, rel=0.01
        )
        assert scaled.jvm_config.heap_bytes == pytest.approx(
            workload.jvm_config.heap_bytes * 0.1, rel=0.01
        )

    def test_preserves_fractions(self):
        workload = build_workload(Benchmark.DAYTRADER)
        scaled = scale_workload(workload, 0.1)
        assert (
            scaled.profile.heap_touched_fraction
            == workload.profile.heap_touched_fraction
        )

    def test_scales_gencon_areas(self):
        from repro.config import SPECJ_JVM_GENCON
        from repro.workloads.base import Workload

        base = build_workload(Benchmark.SPECJENTERPRISE)
        workload = Workload(
            base.profile, SPECJ_JVM_GENCON, base.driver_config
        )
        scaled = scale_workload(workload, 0.1)
        assert scaled.jvm_config.gc_policy is GcPolicy.GENCON
        assert scaled.jvm_config.nursery_bytes < workload.jvm_config.nursery_bytes

    def test_invalid_factor_rejected(self):
        workload = build_workload(Benchmark.DAYTRADER)
        with pytest.raises(ValueError):
            scale_workload(workload, 0.0)
        with pytest.raises(ValueError):
            scale_workload(workload, 1.5)

    def test_scale_kernel_profile(self):
        profile = scale_kernel_profile(0.1)
        assert profile.total_bytes < tiny_kernel_profile().total_bytes * 10**6


class TestTestbed:
    def test_requires_guests(self):
        with pytest.raises(ValueError):
            KvmTestbed([], small_config())

    def test_build_creates_jvms_and_daemons(self):
        testbed = KvmTestbed(small_specs(), small_config())
        testbed.build()
        assert set(testbed.jvms) == {"vm1", "vm2"}
        for kernel in testbed.kernels.values():
            names = {p.name for p in kernel.processes}
            assert names == {"java", "sshd", "rsyslogd"}

    def test_double_build_rejected(self):
        testbed = KvmTestbed(small_specs(), small_config())
        testbed.build()
        with pytest.raises(RuntimeError):
            testbed.build()

    def test_run_and_measure(self):
        testbed = KvmTestbed(small_specs(), small_config())
        result = testbed.measure()
        assert len(result.vm_breakdown.rows) == 2
        assert len(result.java_breakdown.rows) == 2
        assert result.ksm_stats.pages_scanned > 0
        assert result.accounting.total_usage() > 0

    def test_double_run_rejected(self):
        testbed = KvmTestbed(small_specs(), small_config())
        testbed.run()
        with pytest.raises(RuntimeError):
            testbed.run()

    def test_no_system_processes_option(self):
        config = small_config(system_processes=False)
        testbed = KvmTestbed(small_specs(), config)
        testbed.build()
        for kernel in testbed.kernels.values():
            assert {p.name for p in kernel.processes} == {"java"}

    def test_preload_deployment_attaches_caches(self):
        config = small_config(deployment=CacheDeployment.SHARED_COPY)
        testbed = KvmTestbed(small_specs(), config)
        testbed.build()
        for jvm in testbed.jvms.values():
            assert jvm.cache_attached
