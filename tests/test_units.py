"""Unit tests for repro.units."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    DEFAULT_PAGE_SIZE,
    GiB,
    KiB,
    MiB,
    align_down,
    align_up,
    bytes_for,
    from_mib,
    pages_for,
    to_mib,
)


class TestConstants:
    def test_scaling(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_default_page_size_is_4k(self):
        assert DEFAULT_PAGE_SIZE == 4096


class TestPagesFor:
    def test_exact_multiple(self):
        assert pages_for(8192) == 2

    def test_rounds_up(self):
        assert pages_for(8193) == 3
        assert pages_for(1) == 1

    def test_zero(self):
        assert pages_for(0) == 0

    def test_custom_page_size(self):
        assert pages_for(100, page_size=64) == 2

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            pages_for(-1)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            pages_for(100, page_size=0)


class TestBytesFor:
    def test_round_trip(self):
        assert bytes_for(3) == 3 * DEFAULT_PAGE_SIZE

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_for(-2)


class TestMibConversion:
    def test_to_mib(self):
        assert to_mib(5 * MiB) == 5.0

    def test_from_mib(self):
        assert from_mib(1.5) == MiB + MiB // 2


class TestAlignment:
    def test_align_up_already_aligned(self):
        assert align_up(4096, 4096) == 4096

    def test_align_up_rounds(self):
        assert align_up(4097, 4096) == 8192

    def test_align_down(self):
        assert align_down(4097, 4096) == 4096
        assert align_down(4096, 4096) == 4096

    def test_zero_alignment_rejected(self):
        with pytest.raises(ValueError):
            align_up(5, 0)
        with pytest.raises(ValueError):
            align_down(5, -1)

    @given(
        value=st.integers(min_value=0, max_value=10**12),
        alignment=st.integers(min_value=1, max_value=1 << 20),
    )
    def test_align_up_properties(self, value, alignment):
        result = align_up(value, alignment)
        assert result >= value
        assert result % alignment == 0
        assert result - value < alignment

    @given(
        num_bytes=st.integers(min_value=0, max_value=10**12),
        page_size=st.sampled_from([512, 4096, 65536]),
    )
    def test_pages_for_covers_bytes(self, num_bytes, page_size):
        pages = pages_for(num_bytes, page_size)
        assert pages * page_size >= num_bytes
        assert (pages - 1) * page_size < num_bytes or pages == 0
