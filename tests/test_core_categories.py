"""Unit tests for the Table-IV category classifier."""

from repro.core.categories import (
    FIGURE_ORDER,
    MemoryCategory,
    TABLE_IV_CATEGORIES,
    WORK_GROUP,
    categorize_tag,
    is_java_tag,
)


class TestCategorizeTag:
    def test_all_jvm_tags_classified(self):
        cases = {
            "java:code": MemoryCategory.CODE,
            "java:code-data": MemoryCategory.CODE,
            "java:class-metadata": MemoryCategory.CLASS_METADATA,
            "java:scc": MemoryCategory.CLASS_METADATA,
            "java:jit-code": MemoryCategory.JIT_CODE,
            "java:jit-work": MemoryCategory.JIT_WORK,
            "java:heap": MemoryCategory.JAVA_HEAP,
            "java:jvm-work": MemoryCategory.JVM_WORK,
            "java:jvm-work:nio": MemoryCategory.JVM_WORK,
            "java:jvm-work:slack": MemoryCategory.JVM_WORK,
            "java:stack": MemoryCategory.STACK,
        }
        for tag, expected in cases.items():
            assert categorize_tag(tag) is expected, tag

    def test_non_java_tags_unclassified(self):
        for tag in ("sshd:text", "kernel:code", "anon", "qemu"):
            assert categorize_tag(tag) is None
            assert not is_java_tag(tag)

    def test_prefix_requires_separator(self):
        """'java:codex' must not classify as the code area."""
        assert categorize_tag("java:codex") is None

    def test_sub_tags_of_work_area(self):
        assert categorize_tag("java:jvm-work:whatever") is (
            MemoryCategory.JVM_WORK
        )


class TestDisplay:
    def test_figure_order_covers_every_paper_category(self):
        assert set(FIGURE_ORDER) == set(TABLE_IV_CATEGORIES)

    def test_unattributable_is_the_only_extra_category(self):
        """The enum is Table IV plus our degraded-dump bucket."""
        extras = set(MemoryCategory) - set(TABLE_IV_CATEGORIES)
        assert extras == {MemoryCategory.UNATTRIBUTABLE}
        assert MemoryCategory.UNATTRIBUTABLE not in FIGURE_ORDER

    def test_work_group(self):
        assert MemoryCategory.JIT_WORK in WORK_GROUP
        assert MemoryCategory.JVM_WORK in WORK_GROUP

    def test_display_names(self):
        assert MemoryCategory.CLASS_METADATA.display_name == "Class metadata"
        for category in MemoryCategory:
            assert category.display_name
