"""CLI coverage for the remaining figure subcommands (tiny scale)."""

import pytest

from repro.cli import main

ARGS = ["--scale", "0.02", "--ticks", "1"]


class TestFigureCommands:
    def test_fig3b(self, capsys):
        assert main(["fig3b", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "vm2" in out  # the SPECj guest row

    def test_fig3c(self, capsys):
        assert main(["fig3c", "--scale", "0.1", "--ticks", "1"]) == 0
        assert "Class metadata" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "TPS saving" in out or "usage total" in out

    def test_fig5a(self, capsys):
        assert main(["fig5a", *ARGS]) == 0
        assert "shared-copy" in capsys.readouterr().out

    def test_fig5b(self, capsys):
        assert main(["fig5b", *ARGS]) == 0
        capsys.readouterr()

    def test_fig5c(self, capsys):
        assert main(["fig5c", "--scale", "0.1", "--ticks", "1"]) == 0
        capsys.readouterr()

    def test_fig8(self, capsys):
        assert main(["fig8", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "max acceptable VMs" in out

    def test_seed_changes_details(self, capsys):
        assert main(["fig3a", *ARGS, "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["fig3a", *ARGS, "--seed", "7"]) == 0
        second = capsys.readouterr().out
        assert first == second  # deterministic per seed
