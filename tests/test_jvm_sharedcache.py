"""Unit tests for the shared class cache (CDS / -Xshareclasses)."""

import pytest

from repro.jvm.sharedcache import (
    CacheFullError,
    HEADER_BYTES,
    SharedClassCache,
)
from repro.mem.content import ZERO_TOKEN
from repro.units import KiB, MiB
from repro.workloads.classsets import ClassUniverse, JavaClassDef, LoaderKind

from tests.conftest import tiny_profile

PAGE = 4096


def make_class(name, rom=3000, ram=400, loader=LoaderKind.MIDDLEWARE):
    from repro.sim.rng import stable_hash64

    return JavaClassDef(
        name=name,
        loader=loader,
        rom_bytes=rom,
        ram_bytes=ram,
        rom_content_id=stable_hash64("romclass", "test", name),
    )


@pytest.fixture
def cache():
    return SharedClassCache("testcache", 2 * MiB, PAGE, creator_id="c1")


class TestPopulation:
    def test_add_class_returns_offset(self, cache):
        offset = cache.add_class(make_class("a.B"))
        assert offset == HEADER_BYTES
        assert cache.contains("a.B")
        assert cache.offset_of("a.B") == offset

    def test_duplicate_add_is_idempotent(self, cache):
        first = cache.add_class(make_class("a.B"))
        again = cache.add_class(make_class("a.B"))
        assert first == again
        assert cache.stored_classes == 1

    def test_application_class_rejected(self, cache):
        cls = make_class("app.C", loader=LoaderKind.APPLICATION)
        with pytest.raises(ValueError):
            cache.add_class(cls)

    def test_cache_full(self):
        cache = SharedClassCache(
            "tiny", HEADER_BYTES + 4 * KiB, PAGE, creator_id="c1"
        )
        cache.add_class(make_class("a.B", rom=3000))
        with pytest.raises(CacheFullError):
            cache.add_class(make_class("a.C", rom=3000))

    def test_populate_returns_overflow(self):
        cache = SharedClassCache(
            "tiny", HEADER_BYTES + 8 * KiB, PAGE, creator_id="c1"
        )
        classes = [make_class(f"a.C{i}", rom=3000) for i in range(4)]
        classes.append(make_class("app.X", loader=LoaderKind.APPLICATION))
        overflow = cache.populate(classes)
        # Two middleware classes fit (2 x 3072 aligned); the rest overflow,
        # plus the application class.
        assert cache.stored_classes == 2
        assert len(overflow) == 3

    def test_sealed_cache_rejects_adds(self, cache):
        cache.seal()
        with pytest.raises(RuntimeError):
            cache.add_class(make_class("a.B"))

    def test_too_small_cache_rejected(self):
        with pytest.raises(ValueError):
            SharedClassCache("x", HEADER_BYTES, PAGE, creator_id="c")

    def test_used_and_free_bytes(self, cache):
        assert cache.used_bytes == HEADER_BYTES
        cache.add_class(make_class("a.B", rom=1000))
        assert cache.used_bytes > HEADER_BYTES
        assert cache.used_bytes + cache.free_bytes == cache.size_bytes


class TestGeometry:
    def test_page_span(self, cache):
        cache.add_class(make_class("a.B", rom=2 * PAGE))
        span = cache.page_span_of("a.B")
        assert span.start == HEADER_BYTES // PAGE
        assert len(span) >= 2

    def test_classes_at_stable_offsets(self):
        """Two caches populated in the same order place classes at the
        same offsets — the layout-determinism the technique relies on."""
        classes = [make_class(f"a.C{i}") for i in range(10)]
        a = SharedClassCache("c", 2 * MiB, PAGE, creator_id="x")
        b = SharedClassCache("c", 2 * MiB, PAGE, creator_id="y")
        a.populate(classes)
        b.populate(classes)
        for cls in classes:
            assert a.offset_of(cls.name) == b.offset_of(cls.name)


class TestBackingFile:
    def test_file_spans_whole_cache(self, cache):
        cache.add_class(make_class("a.B"))
        backing = cache.as_backing_file("scc")
        assert backing.size_bytes == cache.size_bytes
        assert backing.npages == cache.size_bytes // PAGE

    def test_unused_tail_is_zero(self, cache):
        cache.add_class(make_class("a.B"))
        backing = cache.as_backing_file("scc")
        assert backing.page_token(backing.npages - 1) == ZERO_TOKEN

    def test_same_order_same_content(self):
        """Same creator + same order => byte-identical files."""
        classes = [make_class(f"a.C{i}") for i in range(8)]
        files = []
        for _ in range(2):
            cache = SharedClassCache("c", 2 * MiB, PAGE, creator_id="x")
            cache.populate(classes)
            files.append(cache.as_backing_file("scc"))
        assert [files[0].page_token(i) for i in range(files[0].npages)] == [
            files[1].page_token(i) for i in range(files[1].npages)
        ]

    def test_different_order_different_content(self):
        """Per-VM-populated caches differ: the PER_VM ablation's cause."""
        classes = [make_class(f"a.C{i}") for i in range(8)]
        a = SharedClassCache("c", 2 * MiB, PAGE, creator_id="x")
        b = SharedClassCache("c", 2 * MiB, PAGE, creator_id="x")
        a.populate(classes)
        b.populate(list(reversed(classes)))
        fa = a.as_backing_file("scc")
        fb = b.as_backing_file("scc")
        body = range(HEADER_BYTES // PAGE, fa.npages)
        assert any(fa.page_token(i) != fb.page_token(i) for i in body)

    def test_different_creator_different_header(self):
        a = SharedClassCache("c", 2 * MiB, PAGE, creator_id="x")
        b = SharedClassCache("c", 2 * MiB, PAGE, creator_id="y")
        fa = a.as_backing_file("scc")
        fb = b.as_backing_file("scc")
        assert fa.page_token(0) != fb.page_token(0)


class TestWithUniverse:
    def test_populate_from_universe(self):
        universe = ClassUniverse(tiny_profile())
        cache = SharedClassCache("c", 4 * MiB, PAGE, creator_id="x")
        overflow = cache.populate(universe.all_classes)
        assert cache.stored_classes == len(universe.cacheable_classes())
        assert all(not cls.cacheable for cls in overflow)
