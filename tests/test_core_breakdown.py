"""Unit tests for the Fig. 2/3 aggregation layer."""

import pytest

from repro.core.accounting import owner_oriented_accounting
from repro.core.breakdown import (
    VM_GROUPS,
    java_breakdown,
    vm_breakdown,
)
from repro.core.categories import MemoryCategory
from repro.core.dump import collect_system_dump
from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.units import MiB

from tests.conftest import tiny_kernel_profile

PAGE = 4096


@pytest.fixture
def accounting():
    host = KvmHost(64 * MiB, seed=9)
    kernels = {}
    for name, pid_base in (("vm1", 400), ("vm2", 300)):
        vm = host.create_guest(name, 4 * MiB)
        kernel = GuestKernel(
            vm, host.rng.derive("g", name), pid_base=pid_base
        )
        kernel.boot(tiny_kernel_profile())
        kernels[name] = kernel
        java = kernel.spawn("java")
        heap = java.mmap_anon(2 * PAGE, "java:heap")
        java.write_token(heap, 0, 77)
        java.write_token(heap, 1, 1000 + pid_base)
        work = java.mmap_anon(PAGE, "java:jvm-work")
        java.write_token(work, 0, 2000 + pid_base)
        daemon = kernel.spawn("sshd")
        anon = daemon.mmap_anon(PAGE, "sshd:heap")
        daemon.write_token(anon, 0, 3000 + pid_base)
        vm.allocate_overhead(PAGE)
    host.ksm.run_until_converged()
    dump = collect_system_dump(host, kernels)
    return owner_oriented_accounting(dump)


class TestVmBreakdown:
    def test_rows_in_vm_order(self, accounting):
        breakdown = vm_breakdown(accounting)
        assert [row.vm_name for row in breakdown.rows] == ["vm1", "vm2"]

    def test_groups_present(self, accounting):
        breakdown = vm_breakdown(accounting)
        for row in breakdown.rows:
            assert set(row.usage_bytes) == set(VM_GROUPS)

    def test_group_values(self, accounting):
        breakdown = vm_breakdown(accounting)
        vm2 = breakdown.row("vm2")  # owns the shared java page
        assert vm2.usage_bytes["java"] == 3 * PAGE
        assert vm2.usage_bytes["other_processes"] == PAGE
        assert vm2.usage_bytes["guest_vm"] == PAGE
        assert vm2.usage_bytes["guest_kernel"] > 0
        vm1 = breakdown.row("vm1")
        assert vm1.usage_bytes["java"] == 2 * PAGE
        assert vm1.shared_bytes["java"] == PAGE

    def test_totals_conserve(self, accounting):
        breakdown = vm_breakdown(accounting)
        assert breakdown.total_usage() == accounting.total_usage()

    def test_unknown_vm_raises(self, accounting):
        with pytest.raises(KeyError):
            vm_breakdown(accounting).row("vm9")


class TestJavaBreakdown:
    def test_one_row_per_jvm(self, accounting):
        breakdown = java_breakdown(accounting)
        assert len(breakdown.rows) == 2

    def test_owner_is_smallest_pid(self, accounting):
        breakdown = java_breakdown(accounting)
        owner = breakdown.owner_row()
        assert owner.vm_name == "vm2"
        assert owner.shared_bytes() == 0
        non_primary = breakdown.non_primary_rows()
        assert len(non_primary) == 1
        assert non_primary[0].shared_bytes() == PAGE

    def test_category_split(self, accounting):
        breakdown = java_breakdown(accounting)
        for row in breakdown.rows:
            heap = row.category(MemoryCategory.JAVA_HEAP)
            assert heap.total_bytes == 2 * PAGE
            work = row.category(MemoryCategory.JVM_WORK)
            assert work.total_bytes == PAGE

    def test_work_area_merging(self, accounting):
        breakdown = java_breakdown(accounting)
        row = breakdown.rows[0]
        merged = row.work_area()
        jit = row.category(MemoryCategory.JIT_WORK)
        jvm = row.category(MemoryCategory.JVM_WORK)
        assert merged.total_bytes == jit.total_bytes + jvm.total_bytes

    def test_shared_fraction(self, accounting):
        breakdown = java_breakdown(accounting)
        non_primary = breakdown.non_primary_rows()[0]
        assert non_primary.shared_fraction(
            MemoryCategory.JAVA_HEAP
        ) == pytest.approx(0.5)
        assert non_primary.shared_fraction(
            MemoryCategory.JIT_CODE
        ) == 0.0

    def test_total_bytes_is_bar_length(self, accounting):
        breakdown = java_breakdown(accounting)
        for row in breakdown.rows:
            assert row.total_bytes() == row.usage_bytes() + row.shared_bytes()
