"""Diagnostics applied to a realistic scenario dump (integration)."""

import pytest

from repro.core.accounting import build_frame_usage
from repro.core.categories import MemoryCategory
from repro.core.diagnostics import (
    category_sharing_summary,
    cross_vm_sharing_matrix,
    sharing_histogram,
    zero_page_census,
)
from repro.core.dump import collect_system_dump
from repro.core.experiments.testbed import (
    GuestSpec,
    KvmTestbed,
    TestbedConfig,
    scale_kernel_profile,
    scale_workload,
)
from repro.core.preload import CacheDeployment
from repro.config import Benchmark
from repro.units import GiB, MiB
from repro.workloads.base import build_workload

SCALE = 0.03


@pytest.fixture(scope="module")
def dump_and_host():
    workload = scale_workload(build_workload(Benchmark.DAYTRADER), SCALE)
    config = TestbedConfig(
        deployment=CacheDeployment.SHARED_COPY,
        kernel_profile=scale_kernel_profile(SCALE),
        host_ram_bytes=max(int(6 * GiB * SCALE), 64 * MiB),
        host_kernel_bytes=int(300 * MiB * SCALE),
        qemu_overhead_bytes=max(1 << 16, int(40 * MiB * SCALE)),
        measurement_ticks=2,
        scale=SCALE,
    )
    specs = [
        GuestSpec(f"vm{i + 1}", max(1, int(GiB * SCALE)), workload)
        for i in range(3)
    ]
    testbed = KvmTestbed(specs, config)
    testbed.run()
    dump = collect_system_dump(testbed.host, testbed.kernels)
    return dump, testbed.host


class TestDiagnosticsIntegration:
    def test_histogram_shows_three_way_sharing(self, dump_and_host):
        dump, _host = dump_and_host
        histogram = sharing_histogram(dump)
        # With three preloaded guests, many frames have 3+ mappings (the
        # class-cache pages) and most are private.
        assert histogram.get(1, 0) > sum(
            count for size, count in histogram.items() if size >= 3
        )
        assert sum(
            count for size, count in histogram.items() if size >= 3
        ) > 0

    def test_matrix_symmetric_pairs_similar(self, dump_and_host):
        """Identical workloads: every VM pair shares a similar amount."""
        dump, _host = dump_and_host
        matrix = cross_vm_sharing_matrix(dump)
        pair_values = [
            matrix.get(pair, 0)
            for pair in (("vm1", "vm2"), ("vm1", "vm3"), ("vm2", "vm3"))
        ]
        assert all(value > 0 for value in pair_values)
        assert max(pair_values) < 1.5 * min(pair_values)

    def test_zero_census_consistent(self, dump_and_host):
        dump, _host = dump_and_host
        usage = build_frame_usage(dump)
        census = zero_page_census(dump, usage)
        assert census.total_frames == len(usage)
        assert census.zero_frames >= 1
        assert census.zero_mappings >= census.zero_frames

    def test_category_summary_matches_breakdown_scale(self, dump_and_host):
        dump, _host = dump_and_host
        summary = category_sharing_summary(dump)
        class_total, class_shared = summary[MemoryCategory.CLASS_METADATA]
        # Preloaded: the vast majority of all class bytes sit on shared
        # frames (including the owner's mappings of them).
        assert class_shared / class_total > 0.7
        heap_total, heap_shared = summary[MemoryCategory.JAVA_HEAP]
        assert heap_shared / heap_total < 0.1
