"""Unit tests for the sorted-index dump lookups (vma_of, translate_gfn).

The bisect-based lookups must agree with a linear scan on clean dumps
and resolve deterministically on the overlapping records only a damaged
dump produces.
"""

import pytest

from repro.core.dump import (
    GuestDump,
    GuestProcessDump,
    VmaRecord,
    collect_system_dump,
)
from repro.hypervisor.kvm import MemSlot

from tests.test_faults import build_host


def process_with(vmas):
    return GuestProcessDump(
        pid=100, name="java", page_table={}, vmas=list(vmas)
    )


class TestVmaOf:
    def test_adjacent_vmas_resolve_to_the_right_one(self):
        """Back-to-back VMAs: the boundary vpn belongs to the second."""
        process = process_with([
            VmaRecord(start_vpn=10, npages=5, tag="a"),
            VmaRecord(start_vpn=15, npages=5, tag="b"),
        ])
        assert process.vma_of(10).tag == "a"
        assert process.vma_of(14).tag == "a"
        assert process.vma_of(15).tag == "b"
        assert process.vma_of(19).tag == "b"
        assert process.vma_of(20) is None
        assert process.vma_of(9) is None

    def test_overlapping_boundary_latest_start_wins(self):
        """Overlap (damaged dump): the latest-starting VMA wins."""
        process = process_with([
            VmaRecord(start_vpn=10, npages=10, tag="early"),
            VmaRecord(start_vpn=15, npages=10, tag="late"),
        ])
        assert process.vma_of(12).tag == "early"
        for vpn in range(15, 20):  # the overlapped stretch
            assert process.vma_of(vpn).tag == "late"
        assert process.vma_of(22).tag == "late"
        assert process.vma_of(25) is None

    def test_fully_nested_vma(self):
        process = process_with([
            VmaRecord(start_vpn=0, npages=100, tag="outer"),
            VmaRecord(start_vpn=40, npages=10, tag="inner"),
        ])
        assert process.vma_of(39).tag == "outer"
        assert process.vma_of(45).tag == "inner"
        assert process.vma_of(50).tag == "outer"

    def test_unsorted_input_is_handled(self):
        process = process_with([
            VmaRecord(start_vpn=50, npages=5, tag="high"),
            VmaRecord(start_vpn=0, npages=5, tag="low"),
        ])
        assert process.vma_of(2).tag == "low"
        assert process.vma_of(52).tag == "high"

    def test_cache_rebuilds_after_mutation(self):
        process = process_with([VmaRecord(start_vpn=0, npages=5, tag="a")])
        assert process.vma_of(3).tag == "a"
        process.vmas.append(VmaRecord(start_vpn=8, npages=4, tag="b"))
        assert process.vma_of(9).tag == "b"

    def test_agrees_with_linear_scan_on_real_dump(self):
        host, kernels = build_host(guests=1)
        dump = collect_system_dump(host, kernels)
        for process in dump.guest("vm1").processes:
            for vpn in process.page_table:
                expected = next(
                    (
                        v for v in process.vmas
                        if v.start_vpn <= vpn < v.end_vpn
                    ),
                    None,
                )
                assert process.vma_of(vpn) == expected


def guest_with(slots, npages=100):
    return GuestDump(
        vm_name="vm1",
        vm_index=0,
        memslots=list(slots),
        processes=[],
        gfn_owners={},
        guest_npages=npages,
    )


class TestTranslateGfn:
    def test_adjacent_slots(self):
        guest = guest_with([
            MemSlot(base_gfn=0, npages=10, host_base_vpn=1000),
            MemSlot(base_gfn=10, npages=10, host_base_vpn=5000),
        ])
        assert guest.translate_gfn(0) == 1000
        assert guest.translate_gfn(9) == 1009
        assert guest.translate_gfn(10) == 5000
        assert guest.translate_gfn(19) == 5009
        assert guest.translate_gfn(20) is None

    def test_gap_between_slots(self):
        guest = guest_with([
            MemSlot(base_gfn=0, npages=10, host_base_vpn=1000),
            MemSlot(base_gfn=50, npages=10, host_base_vpn=5000),
        ])
        assert guest.translate_gfn(25) is None
        assert guest.translate_gfn(50) == 5000

    def test_overlapping_slots_latest_base_wins(self):
        guest = guest_with([
            MemSlot(base_gfn=0, npages=20, host_base_vpn=1000),
            MemSlot(base_gfn=10, npages=20, host_base_vpn=9000),
        ])
        assert guest.translate_gfn(5) == 1005
        assert guest.translate_gfn(15) == 9005  # overlap: later slot
        assert guest.translate_gfn(25) == 9015

    def test_invalidate_caches_after_slot_surgery(self):
        guest = guest_with([
            MemSlot(base_gfn=0, npages=10, host_base_vpn=1000),
        ])
        assert guest.translate_gfn(5) == 1005
        guest.memslots[0] = MemSlot(
            base_gfn=0, npages=10, host_base_vpn=7000
        )
        guest.invalidate_caches()
        assert guest.translate_gfn(5) == 7005

    def test_agrees_with_linear_scan_on_real_dump(self):
        host, kernels = build_host(guests=2)
        dump = collect_system_dump(host, kernels)
        for guest in dump.guests:
            for gfn in range(guest.guest_npages + 2):
                expected = next(
                    (
                        slot.to_host_vpn(gfn)
                        for slot in guest.memslots
                        if slot.contains(gfn)
                    ),
                    None,
                )
                assert guest.translate_gfn(gfn) == expected


class TestGuestLookupError:
    def test_keyerror_lists_available_names(self):
        host, kernels = build_host(guests=2)
        dump = collect_system_dump(host, kernels)
        with pytest.raises(KeyError) as excinfo:
            dump.guest("vm9")
        message = str(excinfo.value)
        assert "vm9" in message
        assert "vm1" in message and "vm2" in message


class TestGenerationCounter:
    """Regression tests for the stale-cache bug: an equal-length,
    in-place record replacement used to leave the sorted index stale
    because the rebuild condition only compared lengths."""

    def test_vma_equal_length_replacement_after_invalidate(self):
        process = process_with([
            VmaRecord(start_vpn=0, npages=5, tag="old"),
        ])
        assert process.vma_of(3).tag == "old"
        process.vmas[0] = VmaRecord(start_vpn=0, npages=5, tag="new")
        process.invalidate_caches()
        assert process.vma_of(3).tag == "new"

    def test_vma_moved_range_after_invalidate(self):
        process = process_with([
            VmaRecord(start_vpn=0, npages=5, tag="a"),
            VmaRecord(start_vpn=10, npages=5, tag="b"),
        ])
        assert process.vma_of(12).tag == "b"
        process.vmas[1] = VmaRecord(start_vpn=20, npages=5, tag="b")
        process.invalidate_caches()
        assert process.vma_of(12) is None
        assert process.vma_of(22).tag == "b"

    def test_repeated_invalidation_stays_fresh(self):
        process = process_with([
            VmaRecord(start_vpn=0, npages=5, tag="v0"),
        ])
        for generation in range(3):
            process.vmas[0] = VmaRecord(
                start_vpn=0, npages=5, tag=f"v{generation}"
            )
            process.invalidate_caches()
            assert process.vma_of(0).tag == f"v{generation}"

    def test_memslot_equal_length_replacement_after_invalidate(self):
        guest = guest_with([
            MemSlot(base_gfn=0, npages=10, host_base_vpn=1000),
            MemSlot(base_gfn=10, npages=10, host_base_vpn=2000),
        ])
        assert guest.translate_gfn(15) == 2005
        guest.memslots[1] = MemSlot(
            base_gfn=10, npages=10, host_base_vpn=9000
        )
        guest.invalidate_caches()
        assert guest.translate_gfn(15) == 9005
