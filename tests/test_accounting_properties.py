"""Property-based tests for the accounting layer.

Hypothesis generates random little worlds — guests, processes, pages,
sharing patterns — and checks the policies' conservation laws on all of
them:

* owner-oriented usage sums exactly to the backed frames;
* usage + shared sums exactly to the mapped guest pages;
* PSS sums exactly to the backed frames;
* exactly one owner per frame, and a Java owner whenever any Java
  process maps the frame.
"""

from hypothesis import given, settings, strategies as st

from repro.core.accounting import (
    UserKind,
    build_frame_usage,
    distribution_oriented_accounting,
    owner_oriented_accounting,
)
from repro.core.dump import collect_system_dump
from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.units import MiB

PAGE = 4096


@st.composite
def worlds(draw):
    """Spec for a small random multi-guest world."""
    n_guests = draw(st.integers(1, 3))
    guests = []
    for guest_index in range(n_guests):
        n_processes = draw(st.integers(1, 3))
        processes = []
        for process_index in range(n_processes):
            is_java = draw(st.booleans())
            # Each page is (slot, token): same (slot, token) across
            # processes/guests => mergeable content.
            pages = draw(
                st.lists(
                    st.tuples(st.integers(0, 5), st.integers(1, 4)),
                    min_size=0,
                    max_size=6,
                    unique_by=lambda page: page[0],
                )
            )
            processes.append((is_java, pages))
        kernel_pages = draw(st.integers(0, 4))
        guests.append((processes, kernel_pages))
    return guests


def build_world(spec):
    host = KvmHost(256 * MiB, seed=17)
    kernels = {}
    mapped_pages = 0
    for guest_index, (processes, kernel_pages) in enumerate(spec):
        name = f"vm{guest_index}"
        vm = host.create_guest(name, 4 * MiB)
        kernel = GuestKernel(vm, host.rng.derive("g", name))
        kernels[name] = kernel
        from repro.guestos.kernel import OwnerKind, PageOwner

        for page_index in range(kernel_pages):
            gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="slab"))
            vm.write_gfn(gfn, 1000 + guest_index * 100 + page_index)
            mapped_pages += 0  # kernel pages are not process mappings
        for process_index, (is_java, pages) in enumerate(processes):
            process = kernel.spawn(
                "java" if is_java else f"daemon{process_index}"
            )
            if not pages:
                continue
            tag = "java:heap" if is_java else "daemon:heap"
            vma = process.mmap_anon(8 * PAGE, tag)
            for slot, token in pages:
                process.write_token(vma, slot, token)
                mapped_pages += 1
    host.ksm.run_until_converged(max_passes=8)
    dump = collect_system_dump(host, kernels)
    return host, dump, mapped_pages


class TestConservation:
    @given(spec=worlds())
    @settings(max_examples=40, deadline=None)
    def test_owner_usage_equals_backed_frames(self, spec):
        _host, dump, _mapped = build_world(spec)
        usage = build_frame_usage(dump)
        accounting = owner_oriented_accounting(dump, usage)
        assert accounting.total_usage() == len(usage) * PAGE

    @given(spec=worlds())
    @settings(max_examples=40, deadline=None)
    def test_usage_plus_shared_equals_mappings(self, spec):
        _host, dump, _mapped = build_world(spec)
        usage = build_frame_usage(dump)
        accounting = owner_oriented_accounting(dump, usage)
        total_mappings = sum(len(m) for m in usage.values())
        total_accounted = sum(
            accounting.total_of(user) for user in accounting.users()
        )
        assert total_accounted == total_mappings * PAGE

    @given(spec=worlds())
    @settings(max_examples=40, deadline=None)
    def test_pss_equals_backed_frames(self, spec):
        _host, dump, _mapped = build_world(spec)
        usage = build_frame_usage(dump)
        pss = distribution_oriented_accounting(dump, usage)
        assert abs(pss.total_pss() - len(usage) * PAGE) < 1e-6

    @given(spec=worlds())
    @settings(max_examples=40, deadline=None)
    def test_java_always_preferred_owner(self, spec):
        """Whenever a frame has any Java mapper, a Java process owns it —
        so no Java process is ever charged for a frame a non-Java user
        could have carried, matching the paper's owner rule."""
        _host, dump, _mapped = build_world(spec)
        usage = build_frame_usage(dump)
        accounting = owner_oriented_accounting(dump, usage)
        # Reconstruct ownership from the result: the shared tally of a
        # kernel/daemon user must cover every frame a Java process also
        # maps.
        for fid, mappings in usage.items():
            kinds = {mapping.user.kind for mapping in mappings}
            if UserKind.JAVA in kinds and len(mappings) > 1:
                # At least one Java mapping exists: owner must be Java,
                # so every non-Java user of this frame accrues shared.
                non_java = [
                    m for m in mappings if m.user.kind is not UserKind.JAVA
                ]
                for mapping in non_java:
                    assert accounting.shared_of(mapping.user) >= PAGE
