"""Unit and determinism tests for the tiering policy engine."""

import pytest

from repro.config import TieringSettings
from repro.guestos.kernel import GuestKernel, OwnerKind, PageOwner
from repro.hypervisor.kvm import KvmHost
from repro.tiering import TieringEngine
from repro.units import MiB

PAGE = 4096


def make_env(mode, host_ram=1 * MiB, guest_mem=2 * MiB, **overrides):
    """A deliberately overcommitted host with one busy guest."""
    host = KvmHost(host_ram, seed=5)
    vm = host.create_guest("vm1", guest_mem)
    kernel = GuestKernel(vm, host.rng.derive("g", "vm1"))
    settings = TieringSettings(mode=mode, epoch_ticks=1, **overrides)
    return host, vm, kernel, settings


def touch_pages(vm, kernel, count, free_after=False):
    gfns = []
    for _ in range(count):
        gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="x"))
        vm.write_gfn(gfn, gfn + 1)
        gfns.append(gfn)
    if free_after:
        for gfn in gfns:
            kernel.free_gfn(gfn)
    return gfns


def cool_down(engine):
    """Run quiet epochs until every once-touched page counts as cold."""
    for _ in range(engine.estimator.hot_window_epochs() + 1):
        engine.estimator.advance_epoch()


class TestEpochCadence:
    def test_tick_runs_epoch_on_cadence(self):
        host, vm, kernel, _ = make_env("hints")
        settings = TieringSettings(mode="hints", epoch_ticks=3)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        assert engine.tick() is None
        assert engine.tick() is None
        action = engine.tick()
        assert action is not None
        assert action.epoch == 1

    def test_step_counts_epochs(self):
        host, vm, kernel, settings = make_env("hints")
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        engine.step()
        engine.step()
        assert engine.summary().epochs == 2


class TestHints:
    def test_cold_pages_reach_the_scanner(self):
        host, vm, kernel, settings = make_env("hints", host_ram=64 * MiB)
        touch_pages(vm, kernel, 8)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        cool_down(engine)
        action = engine.step()
        assert action.cold_pages_hinted == 8
        assert host.ksm.pending_cold_hints(vm.page_table) == 8

    def test_hot_pages_not_hinted(self):
        host, vm, kernel, settings = make_env("hints", host_ram=64 * MiB)
        gfns = touch_pages(vm, kernel, 8)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        cool_down(engine)
        # Keep one page hot right up to the epoch close.
        vm.write_gfn(gfns[0], 999)
        action = engine.step()
        assert action.cold_pages_hinted == 7
        assert host.ksm.pending_cold_hints(vm.page_table) == 7

    def test_hints_mode_never_compresses_or_balloons(self):
        host, vm, kernel, settings = make_env("hints")
        touch_pages(vm, kernel, 64)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        assert engine.store is None
        assert engine.balloons is None


class TestCompression:
    def test_compresses_cold_pages_under_pressure(self):
        host, vm, kernel, settings = make_env("compress")
        touch_pages(vm, kernel, 384)  # 1.5 MiB on a 1 MiB host
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        before = host.physmem.bytes_in_use
        cool_down(engine)
        action = engine.step()
        assert action.pages_compressed > 0
        assert action.compression_bytes_saved > 0
        assert host.compression.pool_pages == action.pages_compressed
        assert host.physmem.bytes_in_use < before

    def test_no_pressure_no_compression(self):
        host, vm, kernel, settings = make_env("compress", host_ram=64 * MiB)
        touch_pages(vm, kernel, 64)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        cool_down(engine)
        action = engine.step()
        assert action.pages_compressed == 0

    def test_per_epoch_budget_respected(self):
        host, vm, kernel, settings = make_env(
            "compress", compress_pages_per_epoch=4
        )
        touch_pages(vm, kernel, 384)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        cool_down(engine)
        action = engine.step()
        assert action.pages_compressed == 4

    def test_hot_pages_never_compressed(self):
        host, vm, kernel, settings = make_env("compress")
        gfns = touch_pages(vm, kernel, 384)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        cool_down(engine)
        vm.write_gfn(gfns[0], 123)  # hot again
        engine.step()
        hot_vpn = vm._host_vpn(gfns[0])
        assert not host.compression.is_compressed(vm.page_table, hot_vpn)
        assert vm.page_table.is_mapped(hot_vpn)

    def test_stops_when_pressure_relieved(self):
        host, vm, kernel, settings = make_env("compress")
        touch_pages(vm, kernel, 384)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        cool_down(engine)
        for _ in range(8):
            engine.step()
        deficit = host.physmem.bytes_in_use - host.physmem.capacity_bytes
        assert deficit <= 0
        # Some cold pages must survive uncompressed: the engine stops at
        # the pressure line instead of freezing the whole guest.
        assert host.compression.pool_pages < 384


class TestBallooning:
    def test_balloons_reclaim_under_pressure(self):
        host, vm, kernel, settings = make_env("balloon")
        touch_pages(vm, kernel, 384, free_after=True)
        assert host.physmem.overcommitted_bytes > 0
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        before = host.physmem.bytes_in_use
        cool_down(engine)
        action = engine.step()
        assert action.balloon_reclaimed_bytes > 0
        assert action.balloon_plans
        assert host.physmem.bytes_in_use < before

    def test_no_pressure_no_ballooning(self):
        host, vm, kernel, settings = make_env("balloon", host_ram=64 * MiB)
        touch_pages(vm, kernel, 64, free_after=True)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        cool_down(engine)
        action = engine.step()
        assert action.balloon_reclaimed_bytes == 0
        assert action.balloon_plans == []


class TestSummary:
    def test_summary_accumulates_actions(self):
        host, vm, kernel, settings = make_env("combined")
        touch_pages(vm, kernel, 384)
        engine = TieringEngine(host, {"vm1": kernel}, settings)
        cool_down(engine)
        engine.step()
        engine.step()
        summary = engine.summary()
        assert summary.epochs == 2
        assert summary.pages_compressed == sum(
            a.pages_compressed for a in engine.actions
        )
        assert summary.cold_pages_hinted == sum(
            a.cold_pages_hinted for a in engine.actions
        )
        assert summary.final_wss_bytes == engine.estimator.wss_bytes()


class TestDeterminism:
    def test_pressure_family_serial_equals_parallel(self):
        """The ISSUE's acceptance bar: tiering scenarios are bit-identical
        between in-process and process-pool execution."""
        from repro.core.experiments.pressure import run_pressure_family

        kwargs = dict(
            scenario="daytrader4",
            scale=0.02,
            measurement_ticks=3,
            seed=11,
            host_ram_fraction=0.6,
            cache=None,
        )
        serial = run_pressure_family(jobs=1, **kwargs)
        parallel = run_pressure_family(jobs=4, **kwargs)
        assert serial.to_dict() == parallel.to_dict()
