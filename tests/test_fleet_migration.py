"""Tests for live migration: pre-copy pricing and atomic execution."""

import pytest

from repro.datacenter.fleet import Fleet, ImageCatalog, VmState
from repro.datacenter.migration import (
    LiveMigrator,
    MigrationConfig,
    plan_precopy,
)
from repro.units import GiB


def make_fleet(hosts=3, seed=11):
    catalog = ImageCatalog.generate(seed)
    return Fleet(hosts, 16 * GiB, catalog, seed=seed), catalog


def placed_vm(fleet, catalog, name="vm1", host_index=0):
    vm = fleet.admit(name, catalog.images[0])
    fleet.place_vm(vm, fleet.hosts[host_index])
    return vm


class TestPrecopyPlanning:
    def test_small_vm_goes_straight_to_stop_and_copy(self):
        config = MigrationConfig(downtime_budget_pages=512)
        rounds, remainder, downtime = plan_precopy(100, 1000.0, config)
        assert rounds == []
        assert remainder == 100
        assert downtime >= 1

    def test_rounds_shrink_when_dirty_rate_is_low(self):
        config = MigrationConfig()
        rounds, remainder, _ = plan_precopy(100_000, 500.0, config)
        sizes = [r.pages_copied for r in rounds]
        assert sizes == sorted(sizes, reverse=True)
        assert remainder <= config.downtime_budget_pages

    def test_non_convergent_dirty_rate_hits_round_cap(self):
        config = MigrationConfig(max_precopy_rounds=8)
        # Dirtying far faster than the link can copy: never converges.
        rounds, remainder, _ = plan_precopy(100_000, 10_000_000.0, config)
        assert len(rounds) <= config.max_precopy_rounds
        assert remainder > config.downtime_budget_pages

    def test_pure_function_of_inputs(self):
        config = MigrationConfig()
        assert plan_precopy(50_000, 1234.5, config) == plan_precopy(
            50_000, 1234.5, config
        )


class TestLiveMigrator:
    def test_successful_migration_commits(self):
        fleet, catalog = make_fleet()
        vm = placed_vm(fleet, catalog)
        dest = fleet.hosts[1]
        result = LiveMigrator(fleet).migrate(vm, dest)
        assert result.committed
        assert vm.host == dest.name
        assert vm.state is VmState.RUNNING
        assert dest.reserved_bytes == 0
        assert fleet.hosts[0].committed_bytes == 0
        assert result.copied_pages >= vm.image.resident_pages

    def test_abort_then_retry_succeeds(self):
        fleet, catalog = make_fleet()
        vm = placed_vm(fleet, catalog)
        dest = fleet.hosts[1]
        migrator = LiveMigrator(
            fleet, abort_decider=lambda name, attempt: attempt == 1
        )
        result = migrator.migrate(vm, dest)
        assert result.committed
        assert result.aborted_attempts == 1
        assert result.attempts == 2
        assert vm.host == dest.name

    def test_all_attempts_aborted_rolls_back(self):
        fleet, catalog = make_fleet()
        vm = placed_vm(fleet, catalog)
        source = vm.host
        dest = fleet.hosts[1]
        migrator = LiveMigrator(
            fleet, abort_decider=lambda name, attempt: True
        )
        result = migrator.migrate(vm, dest)
        assert not result.committed
        assert result.aborted_attempts == result.attempts
        # Never half-placed: the VM still runs on its source, and the
        # destination holds no leftover reservation.
        assert vm.host == source
        assert vm.state is VmState.RUNNING
        assert vm.reserved_on is None
        assert dest.reserved_bytes == 0
        assert dest.committed_bytes == 0

    def test_reservation_held_across_retries(self):
        fleet, catalog = make_fleet()
        vm = placed_vm(fleet, catalog)
        dest = fleet.hosts[1]
        observed = []

        def decider(name, attempt):
            observed.append(dest.reserved_bytes)
            return attempt == 1

        LiveMigrator(fleet, abort_decider=decider).migrate(vm, dest)
        # Both attempts saw the reservation in place.
        assert observed == [vm.memory_bytes, vm.memory_bytes]

    def test_unplaced_vm_rejected(self):
        fleet, catalog = make_fleet()
        vm = fleet.admit("vm1", catalog.images[0])
        with pytest.raises(ValueError):
            LiveMigrator(fleet).migrate(vm, fleet.hosts[1])

    def test_deterministic_result(self):
        results = []
        for _ in range(2):
            fleet, catalog = make_fleet()
            vm = placed_vm(fleet, catalog)
            result = LiveMigrator(fleet).migrate(vm, fleet.hosts[1])
            results.append(
                (result.copied_pages, result.duration_ms,
                 result.downtime_ms, len(result.rounds))
            )
        assert results[0] == results[1]
