"""Unit tests for system-dump collection (the §II.B tooling)."""

import pytest

from repro.core.dump import (
    DumpUnanalyzableError,
    collect_system_dump,
    dump_guest,
    read_kvm_memslots,
)
from repro.guestos.kernel import GuestKernel, OwnerKind
from repro.guestos.pagecache import BackingFile
from repro.hypervisor.kvm import KvmHost
from repro.units import MiB

PAGE = 4096


def build_small_host(debug_guest=True):
    host = KvmHost(64 * MiB, seed=9)
    kernels = {}
    for name in ("vm1", "vm2"):
        vm = host.create_guest(name, 4 * MiB)
        kernel = GuestKernel(
            vm, host.rng.derive("g", name), debug_kernel=debug_guest
        )
        kernels[name] = kernel
        java = kernel.spawn("java")
        heap = java.mmap_anon(2 * PAGE, "java:heap")
        java.write_tokens(heap, [1, 2])
        code = java.mmap_file(
            BackingFile("jdk:lib", PAGE, PAGE), "java:code"
        )
        java.fault_file_pages(code)
        daemon = kernel.spawn("sshd")
        anon = daemon.mmap_anon(PAGE, "sshd:heap")
        daemon.write_token(anon, 0, 7)
        vm.allocate_overhead(PAGE)
    return host, kernels


class TestKernelModule:
    def test_read_kvm_memslots(self):
        host, _kernels = build_small_host()
        vm = host.guest("vm1")
        slots = read_kvm_memslots(vm)
        assert len(slots) == 1
        assert slots[0].npages == vm.guest_npages


class TestGuestDump:
    def test_dump_guest_contents(self):
        host, kernels = build_small_host()
        dump = dump_guest(host.guest("vm1"), kernels["vm1"], 0)
        assert dump.vm_name == "vm1"
        names = {p.name for p in dump.processes}
        assert names == {"java", "sshd"}
        java = next(p for p in dump.processes if p.name == "java")
        assert java.is_java
        assert len(java.page_table) == 3  # 2 heap pages + 1 code page
        sshd = next(p for p in dump.processes if p.name == "sshd")
        assert not sshd.is_java

    def test_non_debug_kernel_refused(self):
        host, kernels = build_small_host(debug_guest=False)
        with pytest.raises(DumpUnanalyzableError):
            dump_guest(host.guest("vm1"), kernels["vm1"], 0)

    def test_vma_records(self):
        host, kernels = build_small_host()
        dump = dump_guest(host.guest("vm1"), kernels["vm1"], 0)
        java = next(p for p in dump.processes if p.name == "java")
        tags = {vma.tag for vma in java.vmas}
        assert tags == {"java:heap", "java:code"}
        code = next(v for v in java.vmas if v.tag == "java:code")
        assert code.file_id == "jdk:lib"

    def test_vma_lookup(self):
        host, kernels = build_small_host()
        dump = dump_guest(host.guest("vm1"), kernels["vm1"], 0)
        java = next(p for p in dump.processes if p.name == "java")
        heap = next(v for v in java.vmas if v.tag == "java:heap")
        assert java.vma_of(heap.start_vpn).tag == "java:heap"
        assert java.vma_of(10**9) is None

    def test_gfn_owners_included(self):
        host, kernels = build_small_host()
        dump = dump_guest(host.guest("vm1"), kernels["vm1"], 0)
        kinds = {owner.kind for owner in dump.gfn_owners.values()}
        assert OwnerKind.PROCESS_ANON in kinds
        assert OwnerKind.PAGE_CACHE in kinds


class TestSystemDump:
    def test_collect_all_layers(self):
        host, kernels = build_small_host()
        dump = collect_system_dump(host, kernels)
        assert len(dump.guests) == 2
        assert "host:qemu-vm1" in dump.host.page_tables
        assert dump.host.page_size == PAGE
        assert dump.frame_tokens  # tokens captured for diagnostics

    def test_non_debug_host_refused(self):
        host, kernels = build_small_host()
        with pytest.raises(DumpUnanalyzableError):
            collect_system_dump(host, kernels, host_debug_kernel=False)

    def test_guest_lookup(self):
        host, kernels = build_small_host()
        dump = collect_system_dump(host, kernels)
        assert dump.guest("vm2").vm_name == "vm2"
        with pytest.raises(KeyError):
            dump.guest("vm3")

    def test_dump_is_a_snapshot(self):
        """Post-dump writes must not leak into the collected dump."""
        host, kernels = build_small_host()
        dump = collect_system_dump(host, kernels)
        java = kernels["vm1"].process(
            next(
                p.pid
                for p in dump.guest("vm1").processes
                if p.name == "java"
            )
        )
        before = dict(dump.guest("vm1").processes[0].page_table)
        extra = java.mmap_anon(PAGE, "java:heap")
        java.write_token(extra, 0, 99)
        assert dict(dump.guest("vm1").processes[0].page_table) == before

    def test_guests_without_kernel_info_skipped(self):
        host, kernels = build_small_host()
        dump = collect_system_dump(host, {"vm1": kernels["vm1"]})
        assert len(dump.guests) == 1
        # The undumped guest's pages still show in the host dump.
        assert "host:qemu-vm2" in dump.host.page_tables
