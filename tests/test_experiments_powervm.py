"""Integration tests for the PowerVM experiment (scaled Fig. 6)."""

import pytest

from repro.core.experiments.powervm import run_powervm_experiment


@pytest.fixture(scope="module")
def result():
    return run_powervm_experiment(scale=0.03)


class TestPowerVm:
    def test_sharing_saves_memory_in_both_cases(self, result):
        assert result.not_preloaded.saving_bytes > 0
        assert result.preloaded.saving_bytes > 0

    def test_preloading_increases_sharing(self, result):
        """Fig. 6's headline: preloading adds ≈181 MB of sharing on top of
        the 243 MB baseline — here, at scale, the ratio must hold."""
        ratio = (
            result.preloaded.saving_bytes
            / result.not_preloaded.saving_bytes
        )
        assert 1.3 < ratio < 3.0

    def test_usage_before_similar(self, result):
        """Preloading barely changes the pre-sharing footprint; the win is
        all in what TPS can then merge."""
        before_ratio = (
            result.preloaded.usage_before_bytes
            / result.not_preloaded.usage_before_bytes
        )
        assert 0.9 < before_ratio < 1.1

    def test_sharing_increase_positive(self, result):
        assert result.sharing_increase_bytes > 0

    def test_case_accessors(self, result):
        assert set(result.cases) == {"preloaded", "not-preloaded"}
