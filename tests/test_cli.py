"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "530 / 120 MB" in out

    def test_fig3a_small(self, capsys):
        assert main(["fig3a", "--scale", "0.02", "--ticks", "1"]) == 0
        out = capsys.readouterr().out
        assert "Class metadata" in out
        assert "vm1" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--scale", "0.02", "--ticks", "1"]) == 0
        out = capsys.readouterr().out
        assert "Guest kernel" in out
        assert "TOTAL" in out

    def test_fig6_small(self, capsys):
        assert main(["fig6", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "before sharing" in out
        assert "preloaded" in out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "max acceptable VMs" in out

    def test_scenario_with_deployment(self, capsys):
        code = main([
            "scenario", "tuscany3", "--deployment", "shared-copy",
            "--scale", "0.1", "--ticks", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tuscany3" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestFaultsCli:
    def test_bad_fault_spec_is_a_clean_error(self, capsys):
        assert main(["fig2", "--faults", "bogus"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "bogus" in captured.err

    def test_fig2_with_faults_prints_reports(self, capsys):
        code = main([
            "fig2", "--faults", "1337",
            "--scale", "0.02", "--ticks", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Collection report" in out
        assert "Validation report" in out

    def test_doctor_clean(self, capsys):
        code = main([
            "doctor", "daytrader4", "--scale", "0.02", "--ticks", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "doctor: daytrader4" in out
        assert "clean: all cross-layer invariants hold" in out

    def test_doctor_with_faults(self, capsys):
        code = main([
            "doctor", "daytrader4", "--faults", "1337:0.5",
            "--scale", "0.02", "--ticks", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Collection report" in out
        assert "Validation report" in out
        assert "breakdown under this dump" in out

    def test_fig6_ignores_faults_with_a_note(self, capsys):
        code = main(["fig6", "--faults", "1", "--scale", "0.02"])
        assert code == 0
        captured = capsys.readouterr()
        assert "ignored" in captured.err
        assert "before sharing" in captured.out


class TestFleetCli:
    ARGS = [
        "fleet", "--hosts", "12", "--vms", "40",
        "--chaos-plan", "77:0.3", "--horizon-minutes", "5",
    ]

    def test_fleet_text_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "fault(s) injected" in out
        assert "sharing savings" in out
        assert "placement fingerprint" in out

    def test_fleet_json_report(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["hosts"] == 12
        assert report["violations"] == 0
        assert report["faults_injected"] > 0

    def test_fleet_bench_out_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_fleet.json"
        assert main(self.ARGS + ["--bench-out", str(out_file)]) == 0
        import json

        report = json.loads(out_file.read_text())
        assert report["placement_fingerprint"]

    def test_fleet_without_chaos(self, capsys):
        assert main(["fleet", "--hosts", "5", "--vms", "10"]) == 0
        out = capsys.readouterr().out
        assert "chaos plan off: 0 fault(s)" in out

    def test_fleet_bad_chaos_plan_is_clean_error(self, capsys):
        assert main(["fleet", "--chaos-plan", "bogus"]) == 1
        assert "error:" in capsys.readouterr().err
