"""Unit tests for the guest kernel: gfn allocation, ownership, boot."""

import pytest

from repro.guestos.kernel import (
    GuestKernel,
    KernelProfile,
    OutOfGuestMemoryError,
    OwnerKind,
    PageOwner,
)
from repro.hypervisor.kvm import KvmHost
from repro.units import KiB, MiB

from tests.conftest import tiny_kernel_profile


@pytest.fixture
def env():
    host = KvmHost(64 * MiB, seed=3)
    vm = host.create_guest("vm1", 2 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g"))
    return host, vm, kernel


class TestGfnAllocation:
    def test_alloc_records_owner(self, env):
        _host, _vm, kernel = env
        gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="slab"))
        owner = kernel.owner_of(gfn)
        assert owner.kind is OwnerKind.KERNEL
        assert owner.tag == "slab"

    def test_alloc_until_exhaustion(self, env):
        _host, _vm, kernel = env
        for _ in range(kernel.total_pages):
            kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL))
        with pytest.raises(OutOfGuestMemoryError):
            kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL))

    def test_free_and_reuse(self, env):
        _host, _vm, kernel = env
        gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL))
        kernel.free_gfn(gfn)
        assert kernel.owner_of(gfn).kind is OwnerKind.FREE
        again = kernel.alloc_gfn(PageOwner(OwnerKind.PROCESS_ANON, pid=9))
        assert again == gfn

    def test_double_free_rejected(self, env):
        _host, _vm, kernel = env
        gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL))
        kernel.free_gfn(gfn)
        with pytest.raises(ValueError):
            kernel.free_gfn(gfn)

    def test_free_unallocated_rejected(self, env):
        _host, _vm, kernel = env
        with pytest.raises(ValueError):
            kernel.free_gfn(12)

    def test_allocated_pages_excludes_free(self, env):
        _host, _vm, kernel = env
        gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL))
        kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL))
        kernel.free_gfn(gfn)
        assert kernel.allocated_pages() == 1


class TestBoot:
    def test_boot_touches_kernel_areas(self, env):
        host, vm, kernel = env
        profile = tiny_kernel_profile()
        kernel.boot(profile)
        assert kernel.kernel_resident_bytes() >= profile.total_bytes

    def test_double_boot_rejected(self, env):
        _host, _vm, kernel = env
        kernel.boot(tiny_kernel_profile())
        with pytest.raises(RuntimeError):
            kernel.boot(tiny_kernel_profile())

    def test_identical_images_share_code_and_cache(self):
        """Two guests booted from one base image have identical kernel
        text and clean page-cache pages (the Fig. 2 kernel sharing)."""
        host = KvmHost(64 * MiB, seed=3)
        profile = tiny_kernel_profile()
        tokens = {}
        for name in ("vm1", "vm2"):
            vm = host.create_guest(name, 2 * MiB)
            kernel = GuestKernel(vm, host.rng.derive("g", name))
            kernel.boot(profile)
            code = kernel.kernel_area_pages("code")
            cache = kernel.kernel_area_pages("pagecache")
            data = kernel.kernel_area_pages("data")
            tokens[name] = {
                "code": [vm.read_gfn(g) for g in code],
                "cache": [vm.read_gfn(g) for g in cache],
                "data": [vm.read_gfn(g) for g in data],
            }
        assert tokens["vm1"]["code"] == tokens["vm2"]["code"]
        assert tokens["vm1"]["cache"] == tokens["vm2"]["cache"]
        assert tokens["vm1"]["data"] != tokens["vm2"]["data"]

    def test_different_images_do_not_share(self):
        host = KvmHost(64 * MiB, seed=3)
        results = []
        for name, image in (("vm1", "rhel5.5"), ("vm2", "rhel6.0")):
            vm = host.create_guest(name, 2 * MiB)
            kernel = GuestKernel(vm, host.rng.derive("g", name))
            profile = KernelProfile(
                image_id=image,
                code_bytes=64 * KiB,
                shared_pagecache_bytes=64 * KiB,
                private_data_bytes=64 * KiB,
                buffers_bytes=64 * KiB,
            )
            kernel.boot(profile)
            code = kernel.kernel_area_pages("code")
            results.append([vm.read_gfn(g) for g in code])
        assert results[0] != results[1]


class TestProcesses:
    def test_spawn_increments_pid(self, env):
        _host, _vm, kernel = env
        a = kernel.spawn("p1")
        b = kernel.spawn("p2")
        assert b.pid == a.pid + 1
        assert kernel.process(a.pid) is a
        assert set(kernel.processes) == {a, b}

    def test_pid_base_is_per_vm(self):
        host = KvmHost(64 * MiB, seed=3)
        pids = []
        for name in ("vm1", "vm2"):
            vm = host.create_guest(name, MiB)
            kernel = GuestKernel(vm, host.rng.derive("g", name))
            pids.append(kernel.spawn("p").pid)
        assert pids[0] != pids[1]

    def test_explicit_pid_base(self, env):
        host, vm, _ = env
        kernel = GuestKernel(
            host.guest("vm1"), host.rng.derive("x"), pid_base=500
        )
        assert kernel.spawn("p").pid == 500

    def test_exit_process(self, env):
        _host, _vm, kernel = env
        process = kernel.spawn("p1")
        vma = process.mmap_anon(8192, "heap")
        process.write_token(vma, 0, 1)
        kernel.exit_process(process)
        assert process.pid not in [p.pid for p in kernel.processes]
        assert not process.alive


class TestSnapshots:
    def test_owners_snapshot_is_deep(self, env):
        _host, _vm, kernel = env
        gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="x"))
        snap = kernel.owners_snapshot()
        snap[gfn].tag = "mutated"
        assert kernel.owner_of(gfn).tag == "x"
