"""Unit tests for the code area (executables, libraries, data segments)."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.jvm.codearea import CodeArea
from repro.units import KiB, MiB

PAGE = 4096


def make_code_area(vm_name="vm1", build="j9-sr9", host=None,
                   file_bytes=64 * KiB, data_bytes=16 * KiB):
    if host is None:
        host = KvmHost(128 * MiB, seed=3)
    vm = host.create_guest(vm_name, 16 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g", vm_name))
    process = kernel.spawn("java")
    area = CodeArea(
        process, build, file_bytes, data_bytes,
        host.rng.derive("jvm", vm_name),
    )
    return host, process, area


class TestMapping:
    def test_map_covers_configured_bytes(self):
        _host, process, area = make_code_area()
        area.map()
        assert area.resident_bytes >= 64 * KiB + 16 * KiB
        assert len(area.file_vmas) >= 1
        assert area.data_vma is not None

    def test_double_map_rejected(self):
        _host, _process, area = make_code_area()
        area.map()
        with pytest.raises(RuntimeError):
            area.map()

    def test_file_pages_come_from_page_cache(self):
        _host, process, area = make_code_area()
        area.map()
        cached = process.kernel.page_cache.cached_pages
        assert cached >= sum(vma.npages for vma in area.file_vmas)

    def test_same_build_identical_file_pages(self):
        """Two VMs with the same JVM build map byte-identical library
        pages — the one area the paper finds 'always shareable'."""
        host = KvmHost(256 * MiB, seed=3)
        token_lists = []
        for vm_name in ("vm1", "vm2"):
            _h, process, area = make_code_area(vm_name, host=host)
            area.map()
            tokens = []
            for vma in area.file_vmas:
                tokens.extend(
                    process.read_token(vma, page)
                    for page in range(vma.npages)
                )
            token_lists.append(tokens)
        assert token_lists[0] == token_lists[1]

    def test_different_build_differs(self):
        host = KvmHost(256 * MiB, seed=3)
        token_lists = []
        for vm_name, build in (("vm1", "j9-sr9"), ("vm2", "j9-sr10")):
            _h, process, area = make_code_area(vm_name, build, host=host)
            area.map()
            tokens = []
            for vma in area.file_vmas:
                tokens.extend(
                    process.read_token(vma, page)
                    for page in range(vma.npages)
                )
            token_lists.append(tokens)
        assert token_lists[0] != token_lists[1]

    def test_data_segments_private(self):
        host = KvmHost(256 * MiB, seed=3)
        token_sets = []
        for vm_name in ("vm1", "vm2"):
            _h, process, area = make_code_area(vm_name, host=host)
            area.map()
            token_sets.append(
                {
                    process.read_token(area.data_vma, page)
                    for page in range(area.data_vma.npages)
                }
            )
        assert token_sets[0].isdisjoint(token_sets[1])
