"""Unit and property tests for repro.mem.region."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.content import ZERO_TOKEN, page_tokens_for_chunks, Chunk
from repro.mem.region import Region

PAGE = 4096


class TestRegionBasics:
    def test_empty(self):
        region = Region(PAGE)
        assert region.total_bytes == 0
        assert region.page_count == 0
        assert region.page_tokens() == []

    def test_append_returns_offset(self):
        region = Region(PAGE)
        assert region.append(1, 100) == 0
        assert region.append(2, 50) == 100
        assert region.total_bytes == 150

    def test_append_chunk(self):
        region = Region(PAGE)
        region.append_chunk(Chunk(3, 64))
        assert region.chunk_count == 1

    def test_page_count_includes_base_offset(self):
        region = Region(PAGE, base_offset=PAGE - 1)
        region.append(1, 2)
        assert region.page_count == 2

    def test_invalid_base_offset(self):
        with pytest.raises(ValueError):
            Region(PAGE, base_offset=PAGE)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            Region(0)

    def test_len_is_chunk_count(self):
        region = Region(PAGE)
        region.append(1, 10)
        region.append(2, 10)
        assert len(region) == 2


class TestPadToPage:
    def test_pads_unaligned(self):
        region = Region(PAGE)
        region.append(1, 100)
        padding = region.pad_to_page()
        assert padding == PAGE - 100
        assert (region.base_offset + region.total_bytes) % PAGE == 0

    def test_noop_when_aligned(self):
        region = Region(PAGE)
        region.append(1, PAGE)
        assert region.pad_to_page() == 0

    def test_respects_base_offset(self):
        region = Region(PAGE, base_offset=96)
        region.append(1, 100)
        region.pad_to_page()
        assert (96 + region.total_bytes) % PAGE == 0


class TestChunkGeometry:
    def test_chunk_offset(self):
        region = Region(PAGE)
        region.append(1, 100)
        region.append(2, 200)
        assert region.chunk_offset(0) == 0
        assert region.chunk_offset(1) == 100

    def test_chunk_page_span(self):
        region = Region(PAGE)
        region.append(1, PAGE + 10)  # pages 0-1
        region.append(2, 10)  # page 1
        assert region.chunk_page_span(0) == (0, 1)
        assert region.chunk_page_span(1) == (1, 1)

    def test_span_with_base_offset(self):
        region = Region(PAGE, base_offset=PAGE - 4)
        region.append(1, 8)  # straddles pages 0-1
        assert region.chunk_page_span(0) == (0, 1)


class TestTokenMaterialisation:
    def test_matches_page_tokens_for_chunks(self):
        region = Region(PAGE, base_offset=128)
        region.append(7, 300)
        region.append(0, 5000)
        region.append(9, 77)
        direct = page_tokens_for_chunks(
            [Chunk(7, 300), Chunk(0, 5000), Chunk(9, 77)], PAGE, 128
        )
        assert region.page_tokens() == direct

    def test_cache_invalidation_on_append(self):
        region = Region(PAGE)
        region.append(1, PAGE)
        first = region.page_tokens()
        region.append(2, PAGE)
        second = region.page_tokens()
        assert len(second) == 2
        assert second[0] == first[0]

    def test_page_tokens_returns_copy(self):
        """Mutating the returned list must not corrupt the cached tokens."""
        region = Region(PAGE)
        region.append(1, PAGE)
        tokens = region.page_tokens()
        original = tokens[0]
        tokens[0] = 12345
        assert region.page_tokens()[0] == original

    @given(
        sizes=st.lists(st.integers(1, 2 * PAGE), min_size=1, max_size=10),
        base=st.integers(0, PAGE - 1),
    )
    @settings(max_examples=50)
    def test_same_build_same_tokens(self, sizes, base):
        def build():
            region = Region(PAGE, base_offset=base)
            for index, size in enumerate(sizes):
                region.append(index + 1, size)
            return region.page_tokens()

        assert build() == build()

    @given(sizes=st.lists(st.integers(1, PAGE), min_size=2, max_size=6))
    @settings(max_examples=50)
    def test_zero_padding_never_changes_earlier_full_pages(self, sizes):
        region = Region(PAGE)
        for index, size in enumerate(sizes):
            region.append(index + 1, size)
        before = region.page_tokens()
        region.append(0, PAGE)  # zero tail
        after = region.page_tokens()
        # All fully covered earlier pages keep their tokens.
        assert after[: len(before) - 1] == before[:-1]
