"""Unit tests for backing files and the guest page cache."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.guestos.pagecache import BackingFile, zero_file
from repro.hypervisor.kvm import KvmHost
from repro.mem.content import ZERO_TOKEN
from repro.units import MiB

PAGE = 4096


@pytest.fixture
def kernel():
    host = KvmHost(64 * MiB, seed=3)
    vm = host.create_guest("vm1", 4 * MiB)
    return GuestKernel(vm, host.rng.derive("g"))


class TestBackingFile:
    def test_generated_tokens_deterministic(self):
        a = BackingFile("img:/f", 2 * PAGE, PAGE)
        b = BackingFile("img:/f", 2 * PAGE, PAGE)
        assert a.page_token(0) == b.page_token(0)
        assert a.page_token(0) != a.page_token(1)

    def test_different_ids_different_content(self):
        a = BackingFile("img:/f", PAGE, PAGE)
        b = BackingFile("img:/g", PAGE, PAGE)
        assert a.page_token(0) != b.page_token(0)

    def test_explicit_tokens(self):
        f = BackingFile("f", 2 * PAGE, PAGE, tokens=[11, 22])
        assert f.page_token(1) == 22

    def test_token_list_length_checked(self):
        with pytest.raises(ValueError):
            BackingFile("f", 2 * PAGE, PAGE, tokens=[1])

    def test_out_of_range_page(self):
        f = BackingFile("f", PAGE, PAGE)
        with pytest.raises(IndexError):
            f.page_token(1)

    def test_copy_preserves_content_identity(self):
        """A file copy is byte-identical: the paper's cache-copy step."""
        original = BackingFile("src", 3 * PAGE, PAGE)
        copy = original.copy_as("dst")
        assert copy.file_id == "dst"
        assert [copy.page_token(i) for i in range(3)] == [
            original.page_token(i) for i in range(3)
        ]

    def test_zero_file(self):
        f = zero_file("sparse", 2 * PAGE, PAGE)
        assert f.page_token(0) == ZERO_TOKEN
        assert f.page_token(1) == ZERO_TOKEN

    def test_npages_rounds_up(self):
        assert BackingFile("f", PAGE + 1, PAGE).npages == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BackingFile("f", -1, PAGE)


class TestPageCache:
    def test_miss_fills_cache(self, kernel):
        backing = BackingFile("img:/f", 2 * PAGE, PAGE)
        gfn = kernel.page_cache.page_gfn(backing, 0)
        assert kernel.vm.read_gfn(gfn) == backing.page_token(0)
        assert kernel.page_cache.cached_pages == 1

    def test_hit_returns_same_gfn(self, kernel):
        backing = BackingFile("img:/f", PAGE, PAGE)
        first = kernel.page_cache.page_gfn(backing, 0)
        second = kernel.page_cache.page_gfn(backing, 0)
        assert first == second
        assert kernel.page_cache.cached_pages == 1

    def test_mapcount_tracking(self, kernel):
        backing = BackingFile("img:/f", PAGE, PAGE)
        kernel.page_cache.note_mapped(backing, 0)
        kernel.page_cache.note_mapped(backing, 0)
        assert kernel.page_cache.mapcount("img:/f", 0) == 2
        kernel.page_cache.note_unmapped(backing, 0)
        assert kernel.page_cache.mapcount("img:/f", 0) == 1
        kernel.page_cache.note_unmapped(backing, 0)
        assert kernel.page_cache.mapcount("img:/f", 0) == 0

    def test_cached_bytes(self, kernel):
        backing = BackingFile("img:/f", 3 * PAGE, PAGE)
        for index in range(3):
            kernel.page_cache.page_gfn(backing, index)
        assert kernel.page_cache.cached_bytes() == 3 * PAGE

    def test_same_file_two_guests_identical_tokens(self):
        """Cross-VM: identical files cache identical page contents — the
        raw material for KSM's kernel-area sharing."""
        host = KvmHost(64 * MiB, seed=3)
        tokens = []
        for name in ("vm1", "vm2"):
            vm = host.create_guest(name, 4 * MiB)
            kernel = GuestKernel(vm, host.rng.derive("g", name))
            backing = BackingFile("base:/usr/lib/libfoo", PAGE, PAGE)
            gfn = kernel.page_cache.page_gfn(backing, 0)
            tokens.append(vm.read_gfn(gfn))
        assert tokens[0] == tokens[1]
