"""Unit tests for the PowerVM system-VM hypervisor."""

import pytest

from repro.hypervisor.powervm import PowerVmHost
from repro.units import MiB

PAGE = 4096


@pytest.fixture
def host():
    return PowerVmHost(256 * MiB, seed=7)


class TestGuests:
    def test_create_guest(self, host):
        lpar = host.create_guest("lpar1", 4 * MiB)
        assert lpar.guest_npages == 1024
        assert host.guest("lpar1") is lpar

    def test_duplicate_rejected(self, host):
        host.create_guest("lpar1", MiB)
        with pytest.raises(ValueError):
            host.create_guest("lpar1", MiB)

    def test_write_read(self, host):
        lpar = host.create_guest("lpar1", MiB)
        lpar.write_gfn(5, 42)
        assert lpar.read_gfn(5) == 42
        assert lpar.read_gfn(6) is None

    def test_gfn_bounds(self, host):
        lpar = host.create_guest("lpar1", MiB)
        with pytest.raises(ValueError):
            lpar.write_gfn(256, 1)

    def test_direct_mapping_two_layers(self, host):
        """System-VM style: gfn maps straight to a host frame."""
        lpar = host.create_guest("lpar1", MiB)
        lpar.write_gfn(0, 9)
        fid = lpar.host_frame_of_gfn(0)
        assert host.physmem.get_frame(fid).token == 9


class TestPageSharing:
    def test_identical_pages_merge(self, host):
        a = host.create_guest("lpar1", MiB)
        b = host.create_guest("lpar2", MiB)
        a.write_gfn(0, 5)
        b.write_gfn(0, 5)
        merged = host.run_page_sharing()
        assert merged == 1
        assert a.host_frame_of_gfn(0) == b.host_frame_of_gfn(0)
        assert host.monitor_total_usage_bytes() == PAGE

    def test_different_pages_untouched(self, host):
        a = host.create_guest("lpar1", MiB)
        b = host.create_guest("lpar2", MiB)
        a.write_gfn(0, 5)
        b.write_gfn(0, 6)
        assert host.run_page_sharing() == 0

    def test_dedicated_memory_excluded(self, host):
        """LPARs with dedicated physical memory do not share (§V.B)."""
        a = host.create_guest("lpar1", MiB)
        b = host.create_guest("lpar2", MiB, dedicated_memory=True)
        a.write_gfn(0, 5)
        b.write_gfn(0, 5)
        assert host.run_page_sharing() == 0

    def test_write_after_sharing_breaks_cow(self, host):
        a = host.create_guest("lpar1", MiB)
        b = host.create_guest("lpar2", MiB)
        a.write_gfn(0, 5)
        b.write_gfn(0, 5)
        host.run_page_sharing()
        a.write_gfn(0, 7)
        assert b.read_gfn(0) == 5
        assert a.host_frame_of_gfn(0) != b.host_frame_of_gfn(0)

    def test_sharing_is_idempotent(self, host):
        a = host.create_guest("lpar1", MiB)
        b = host.create_guest("lpar2", MiB)
        a.write_gfn(0, 5)
        b.write_gfn(0, 5)
        host.run_page_sharing()
        assert host.run_page_sharing() == 0

    def test_three_way_merge(self, host):
        guests = [host.create_guest(f"lpar{i}", MiB) for i in range(3)]
        for lpar in guests:
            lpar.write_gfn(0, 5)
        merged = host.run_page_sharing()
        assert merged == 2
        assert host.monitor_total_usage_bytes() == PAGE

    def test_monitoring_reports_usage(self, host):
        a = host.create_guest("lpar1", MiB)
        a.write_gfn(0, 1)
        a.write_gfn(1, 2)
        assert host.monitor_total_usage_bytes() == 2 * PAGE
