"""Unit tests for the compressed paging-to-RAM store (§VI)."""

import pytest

from repro.mem.address_space import PageTable
from repro.mem.compression import (
    CompressedRamStore,
    compressed_fraction,
)
from repro.mem.content import ZERO_TOKEN
from repro.mem.physmem import HostPhysicalMemory
from repro.units import MiB

PAGE = 4096


@pytest.fixture
def env():
    pm = HostPhysicalMemory(64 * MiB, PAGE)
    table = PageTable("t")
    store = CompressedRamStore(pm)
    return pm, table, store


class TestCompressedFraction:
    def test_zero_pages_compress_to_nothing(self):
        assert compressed_fraction(ZERO_TOKEN) < 0.01

    def test_data_pages_in_expected_band(self):
        for token in range(1, 200):
            fraction = compressed_fraction(token)
            assert 0.30 <= fraction <= 0.70

    def test_deterministic(self):
        assert compressed_fraction(42) == compressed_fraction(42)


class TestCompressRestore:
    def test_compress_releases_frame(self, env):
        pm, table, store = env
        pm.map_token(table, 0, 7)
        saved = store.compress_page(table, 0)
        assert saved > 0
        assert pm.frames_in_use == 0
        assert store.is_compressed(table, 0)
        assert not table.is_mapped(0)

    def test_access_restores_content(self, env):
        pm, table, store = env
        pm.map_token(table, 0, 7)
        store.compress_page(table, 0)
        store.access_page(table, 0)
        assert pm.read_token(table, 0) == 7
        assert not store.is_compressed(table, 0)
        assert store.stats.pages_restored == 1

    def test_access_costs_cpu(self, env):
        pm, table, store = env
        pm.map_token(table, 0, 7)
        before = store.stats.cpu_us
        store.compress_page(table, 0)
        store.access_page(table, 0)
        assert store.stats.cpu_us > before

    def test_double_compress_rejected(self, env):
        pm, table, store = env
        pm.map_token(table, 0, 7)
        store.compress_page(table, 0)
        with pytest.raises(ValueError):
            store.compress_page(table, 0)

    def test_compress_unmapped_rejected(self, env):
        _pm, table, store = env
        with pytest.raises(KeyError):
            store.compress_page(table, 0)

    def test_access_uncompressed_rejected(self, env):
        _pm, table, store = env
        with pytest.raises(KeyError):
            store.access_page(table, 0)

    def test_ksm_stable_pages_skipped(self, env):
        """Compressing a TPS-merged frame would lose memory, so the store
        refuses — the §VI trade-off between the techniques."""
        pm, table, store = env
        fid = pm.map_token(table, 0, 7)
        pm.get_frame(fid).ksm_stable = True
        assert store.compress_page(table, 0) == 0
        assert not store.is_compressed(table, 0)
        assert table.is_mapped(0)

    def test_pool_accounting(self, env):
        pm, table, store = env
        for vpn in range(4):
            pm.map_token(table, vpn, vpn + 1)
            store.compress_page(table, vpn)
        assert store.pool_pages == 4
        assert 0 < store.pool_bytes < 4 * PAGE
        assert store.stats.bytes_saved == 4 * PAGE - store.pool_bytes

    def test_pool_bytes_charged_to_host(self, env):
        """Compressing must not make memory vanish: the pool's bytes stay
        on the host's books until the page is restored or dropped."""
        pm, table, store = env
        pm.map_token(table, 0, 7)
        before = pm.bytes_in_use
        store.compress_page(table, 0)
        assert pm.pool_bytes == store.pool_bytes
        assert pm.bytes_in_use == before - PAGE + store.pool_bytes
        store.access_page(table, 0)
        assert pm.pool_bytes == 0
        assert pm.bytes_in_use == before

    def test_drop_page_releases_pool_charge(self, env):
        pm, table, store = env
        pm.map_token(table, 0, 7)
        store.compress_page(table, 0)
        store.drop_page(table, 0)
        assert not store.is_compressed(table, 0)
        assert store.pool_pages == 0
        assert pm.pool_bytes == 0
        assert pm.bytes_in_use == 0

    def test_drop_uncompressed_rejected(self, env):
        _pm, table, store = env
        with pytest.raises(KeyError):
            store.drop_page(table, 0)

    def test_audit_matches_stats(self, env):
        pm, table, store = env
        for vpn in range(6):
            pm.map_token(table, vpn, vpn + 1)
            store.compress_page(table, vpn)
        store.access_page(table, 2)
        store.drop_page(table, 4)
        assert store.audit_pool_bytes() == store.pool_bytes
        assert store.audit_pool_bytes() == pm.pool_bytes


class TestSweep:
    def test_sweep_compresses_everything(self, env):
        pm, table, store = env
        for vpn in range(10):
            pm.map_token(table, vpn, vpn + 1)
        saved = store.sweep(table)
        assert saved > 0
        assert store.pool_pages == 10
        assert pm.frames_in_use == 0

    def test_sweep_limit(self, env):
        pm, table, store = env
        for vpn in range(10):
            pm.map_token(table, vpn, vpn + 1)
        store.sweep(table, limit=3)
        assert store.pool_pages == 3

    def test_zero_pages_save_almost_everything(self, env):
        pm, table, store = env
        for vpn in range(4):
            pm.map_token(table, vpn, ZERO_TOKEN)
        saved = store.sweep(table)
        assert saved > 4 * PAGE * 0.99

    def test_skipped_stable_pages_do_not_consume_limit(self, env):
        """Regression: a KSM-stable page the sweep refuses to compress
        must not burn the budget — the limit counts *compressed* pages."""
        pm, table, store = env
        for vpn in range(4):  # the stable prefix the old code choked on
            fid = pm.map_token(table, vpn, 7)
            pm.get_frame(fid).ksm_stable = True
        for vpn in range(4, 10):
            pm.map_token(table, vpn, vpn + 1)
        store.sweep(table, limit=3)
        assert store.pool_pages == 3
        for vpn in range(4):
            assert not store.is_compressed(table, vpn)

    def test_sweep_of_only_stable_pages_is_a_noop(self, env):
        pm, table, store = env
        for vpn in range(5):
            fid = pm.map_token(table, vpn, 7)
            pm.get_frame(fid).ksm_stable = True
        assert store.sweep(table, limit=2) == 0
        assert store.pool_pages == 0
