"""The per-phase profiler and its CLI surface."""

import json

import pytest

from repro.perf.profile import PhaseProfiler


def test_phase_accumulates_wall_cpu_and_count():
    profiler = PhaseProfiler()
    for _ in range(3):
        with profiler.phase("scan"):
            sum(range(2000))
    sample = profiler.phases["scan"]
    assert sample.count == 3
    assert sample.wall_s > 0
    assert sample.cpu_s >= 0
    report = profiler.as_dict()
    assert report["phases"]["scan"]["count"] == 3
    assert report["total_wall_s"] == pytest.approx(sample.wall_s)


def test_phase_records_even_on_exception():
    profiler = PhaseProfiler()
    with pytest.raises(RuntimeError):
        with profiler.phase("dump"):
            raise RuntimeError("boom")
    assert profiler.phases["dump"].count == 1


def test_render_orders_standard_phases_first():
    profiler = PhaseProfiler()
    with profiler.phase("zcustom"):
        pass
    with profiler.phase("scan"):
        pass
    with profiler.phase("build"):
        pass
    lines = profiler.render("title").splitlines()
    names = [line.split()[0] for line in lines[3:-1]]
    assert names == ["build", "scan", "zcustom"]


def test_scenario_run_fills_standard_phases(tmp_path):
    from repro.core.experiments.scenarios import run_scenario

    profiler = PhaseProfiler()
    run_scenario(
        "daytrader4",
        scale=0.02,
        measurement_ticks=2,
        scan_engine="batch",
        profiler=profiler,
    )
    for phase in ("build", "warmup", "workload", "scan", "dump",
                  "accounting"):
        assert phase in profiler.phases, phase
        assert profiler.phases[phase].wall_s > 0
    # ticks drive workload/scan once per tick
    assert profiler.phases["workload"].count == 2
    path = tmp_path / "profile.json"
    profiler.write_json(str(path))
    report = json.loads(path.read_text())
    assert report["total_wall_s"] > 0
    assert set(report["phases"]) >= {"build", "scan", "dump"}


def test_cli_profile_subcommand(capsys):
    from repro.cli import main

    rc = main([
        "profile", "daytrader4", "--scale", "0.02", "--ticks", "2",
        "--scan-engine", "batch", "--no-cache",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "phase profile: daytrader4" in out
    assert "scan" in out
    assert "TOTAL" in out


def test_cli_profile_flag_writes_json(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "prof.json"
    rc = main([
        "scenario", "daytrader4", "--scale", "0.02", "--ticks", "2",
        "--profile", str(path), "--no-cache",
    ])
    assert rc == 0
    report = json.loads(path.read_text())
    assert "scan" in report["phases"]
    assert "profile JSON written" in capsys.readouterr().out
