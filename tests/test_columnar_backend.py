"""Unit tests for the columnar backend kernels.

Every op is exercised on both implementations (numpy and the stdlib
``array`` fallback) through one parametrized fixture, so the two
backends can never drift apart silently.  The interval/exact/owner
kernels are the load-bearing pieces of the vectorized three-layer
translation; the edge cases here (overlaps, misses, empty inputs) are
exactly the ones damaged dumps produce.
"""

from __future__ import annotations

import pytest

from repro.core.columnar.backend import (
    BACKEND_DICT,
    BACKEND_NUMPY,
    BACKEND_STDLIB,
    ENV_BACKEND,
    ENV_NO_NUMPY,
    MISS,
    NumpyOps,
    StdlibOps,
    available_backends,
    merge_intervals,
    numpy_available,
    ops_for,
    point_in_intervals,
    resolve_backend,
)

BACKENDS = [BACKEND_STDLIB] + (
    [BACKEND_NUMPY] if numpy_available() else []
)


@pytest.fixture(params=BACKENDS)
def ops(request):
    return ops_for(request.param)


class TestColumns:
    def test_roundtrip(self, ops):
        vec = ops.column([3, 1, 2])
        assert ops.tolist(vec) == [3, 1, 2]
        assert ops.length(vec) == 3

    def test_empty_and_arange(self, ops):
        assert ops.tolist(ops.empty()) == []
        assert ops.length(ops.empty()) == 0
        assert ops.tolist(ops.arange(4)) == [0, 1, 2, 3]

    def test_concat_take_repeat(self, ops):
        a = ops.column([1, 2])
        b = ops.column([3])
        assert ops.tolist(ops.concat([a, ops.empty(), b])) == [1, 2, 3]
        assert ops.tolist(ops.concat([])) == []
        vec = ops.column([10, 20, 30])
        assert ops.tolist(ops.take(vec, ops.column([2, 0]))) == [30, 10]
        assert ops.tolist(ops.repeat_value(7, 3)) == [7, 7, 7]

    def test_column_from_generator_with_count(self, ops):
        vec = ops.column((i * i for i in range(4)), count=4)
        assert ops.tolist(vec) == [0, 1, 4, 9]

    def test_arithmetic_and_masks(self, ops):
        vec = ops.column([1, MISS, 3])
        assert ops.tolist(ops.add_scalar(ops.column([1, 2]), 10)) == [
            11, 12,
        ]
        assert ops.tolist(
            ops.add(ops.column([1, 2]), ops.column([10, 20]))
        ) == [11, 22]
        assert ops.tolist(ops.replace_miss(vec, -1)) == [1, -1, 3]
        mask = ops.mask_ne(vec, MISS)
        assert ops.tolist(ops.compress(vec, mask)) == [1, 3]
        assert ops.tolist(ops.compress(vec, ops.mask_not(mask))) == [MISS]
        assert ops.any_mask(mask)
        assert not ops.any_mask(ops.mask_ne(ops.empty(), 0))

    def test_unique_setdiff_unclaimed(self, ops):
        assert ops.tolist(ops.unique(ops.column([3, 1, 3, 2, 1]))) == [
            1, 2, 3,
        ]
        universe = ops.column([0, 1, 2, 3, 4])
        assert ops.tolist(
            ops.setdiff_sorted(universe, ops.column([1, 3]))
        ) == [0, 2, 4]
        unclaimed = ops.unclaimed_in_range(
            6, [ops.column([1, 2]), ops.column([4, 4, 9])]
        )
        assert ops.tolist(unclaimed) == [0, 3, 5]

    def test_select(self, ops):
        lookup = ops.column([100, 200, 300])
        ids = ops.column([2, 0, MISS])
        assert ops.tolist(ops.select(lookup, ids, -5)) == [300, 100, -5]
        assert ops.tolist(ops.select(lookup, ops.empty(), -5)) == []


class TestIntervalLookup:
    def build(self, ops, triples):
        starts = [t[0] for t in triples]
        ends = [t[1] for t in triples]
        payloads = [t[2] for t in triples]
        return ops.interval_build(starts, ends, payloads)

    def lookup(self, ops, table, queries):
        return ops.tolist(ops.interval_lookup(table, ops.column(queries)))

    def test_adjacent(self, ops):
        table = self.build(ops, [(10, 15, 1), (15, 20, 2)])
        assert not table.overlapping
        assert self.lookup(ops, table, [9, 10, 14, 15, 19, 20]) == [
            MISS, 1, 1, 2, 2, MISS,
        ]

    def test_gap(self, ops):
        table = self.build(ops, [(0, 5, 1), (50, 55, 2)])
        assert self.lookup(ops, table, [25, 4, 50]) == [MISS, 1, 2]

    def test_overlap_latest_start_wins(self, ops):
        table = self.build(ops, [(10, 20, 1), (15, 25, 2)])
        assert table.overlapping
        assert self.lookup(ops, table, [12, 15, 19, 22, 25]) == [
            1, 2, 2, 2, MISS,
        ]

    def test_nested_interval_backward_walk(self, ops):
        # A fully nested interval: queries past the inner end must walk
        # back to the outer one — the damaged-dump slow path.
        table = self.build(ops, [(0, 100, 1), (40, 50, 2)])
        assert self.lookup(ops, table, [39, 45, 50, 99, 100]) == [
            1, 2, 1, 1, MISS,
        ]

    def test_empty_table(self, ops):
        table = self.build(ops, [])
        assert self.lookup(ops, table, [0, 7]) == [MISS, MISS]
        assert self.lookup(ops, table, []) == []


class TestMembershipAndExact:
    def test_membership(self, ops):
        merged = ops.membership_build([(0, 5), (10, 15)])
        mask = ops.membership(merged, ops.column([0, 4, 5, 9, 10, 14, 15]))
        got = ops.tolist(ops.compress(ops.arange(7), mask))
        assert got == [0, 1, 4, 5]

    def test_membership_empty(self, ops):
        merged = ops.membership_build([])
        mask = ops.membership(merged, ops.column([1, 2]))
        assert not ops.any_mask(mask)

    def test_exact_lookup(self, ops):
        table = ops.exact_build([5, 1, 9], [50, 10, 90])
        got = ops.tolist(
            ops.exact_lookup(table, ops.column([1, 2, 9, 5, 100]))
        )
        assert got == [10, MISS, 90, 50, MISS]

    def test_exact_empty(self, ops):
        table = ops.exact_build([], [])
        assert ops.tolist(
            ops.exact_lookup(table, ops.column([3]))
        ) == [MISS]


class TestOwnerReduce:
    def columns(self, ops, rows):
        cols = list(zip(*rows)) if rows else [[]] * 6
        return tuple(ops.column(list(col)) for col in cols)

    def test_winner_per_fid_and_shared_counts(self, ops):
        # rows: (fid, kind, pid, vmidx, rank, cell)
        rows = [
            (7, 1, 30, 0, 2, 11),  # fid 7: loses on kind
            (7, 0, 40, 0, 9, 12),  # fid 7: wins (lowest kind)
            (8, 0, 40, 0, 9, 12),  # fid 8: sole mapper, wins
            (7, 1, 30, 0, 1, 13),  # fid 7: loses
        ]
        survivors, shared = ops.owner_reduce(self.columns(ops, rows))
        fid, kind, pid, vmidx, rank, cell = (
            ops.tolist(col) for col in survivors
        )
        assert fid == [7, 8]
        assert cell == [12, 12]
        assert shared == {11: 1, 13: 1}

    def test_tie_break_order(self, ops):
        # Same fid+kind: lower pid wins; same pid: lower vmidx, then
        # lower rank (lexicographically smaller tag).
        rows = [
            (1, 0, 20, 0, 5, 2),
            (1, 0, 10, 1, 9, 3),  # wins: lower pid beats lower vmidx
            (1, 0, 10, 2, 1, 4),
        ]
        survivors, shared = ops.owner_reduce(self.columns(ops, rows))
        assert ops.tolist(survivors[5]) == [3]
        assert shared == {2: 1, 4: 1}

    def test_empty(self, ops):
        survivors, shared = ops.owner_reduce(self.columns(ops, []))
        assert shared == {}
        assert all(ops.length(col) == 0 for col in survivors)


class TestGroupBys:
    def test_group_sizes(self, ops):
        fid = ops.column([5, 3, 5, 5, 3])
        order, sizes = ops.group_sizes(fid)
        ordered = ops.tolist(ops.take(fid, order))
        assert ordered == [3, 3, 5, 5, 5]
        assert ops.tolist(sizes) == [2, 2, 3, 3, 3]

    def test_count_and_weighted_sum_by(self, ops):
        ids = ops.column([0, 2, 2, 0, 2])
        assert ops.count_by(ids, 4) == [2, 0, 3, 0]
        weights = ops.reciprocal(ops.column([1, 2, 2, 1, 4]))
        sums = ops.weighted_sum_by(ids, weights, 4)
        assert sums[0] == pytest.approx(2.0)
        assert sums[2] == pytest.approx(0.5 + 0.5 + 0.25)
        assert sums[1] == sums[3] == 0.0


class TestPureHelpers:
    def test_merge_intervals(self):
        assert merge_intervals([(5, 10), (0, 3), (9, 12), (20, 20)]) == [
            (0, 3), (5, 12),
        ]

    def test_point_in_intervals(self):
        cover = merge_intervals([(0, 3), (5, 12)])
        hits = [p for p in range(14) if point_in_intervals(cover, p)]
        assert hits == [0, 1, 2, 5, 6, 7, 8, 9, 10, 11]
        assert not point_in_intervals([], 0)


class TestBackendSelection:
    def test_default_is_dict(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None) == BACKEND_DICT
        assert resolve_backend("dict") == BACKEND_DICT

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "columnar-stdlib")
        assert resolve_backend(None) == BACKEND_STDLIB

    def test_columnar_auto_selects(self, monkeypatch):
        monkeypatch.delenv(ENV_NO_NUMPY, raising=False)
        expected = BACKEND_NUMPY if numpy_available() else BACKEND_STDLIB
        assert resolve_backend("columnar") == expected
        monkeypatch.setenv(ENV_NO_NUMPY, "1")
        assert resolve_backend("columnar") == BACKEND_STDLIB

    def test_numpy_pinned_without_numpy_fails(self, monkeypatch):
        monkeypatch.setenv(ENV_NO_NUMPY, "1")
        with pytest.raises(ValueError):
            resolve_backend("columnar-numpy")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("pandas")

    def test_ops_for_dict_rejected(self):
        with pytest.raises(ValueError):
            ops_for(BACKEND_DICT)

    def test_available_backends_order(self):
        names = available_backends()
        assert names[0] == BACKEND_DICT
        assert names[-1] == BACKEND_STDLIB

    def test_ops_classes(self):
        assert StdlibOps().name == BACKEND_STDLIB
        if numpy_available():
            assert NumpyOps().name == BACKEND_NUMPY
