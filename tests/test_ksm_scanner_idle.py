"""The drained scanner's O(1) idle short-circuit.

Once a whole wrap of the table list yields no work, ``scan_pages`` must
return without spinning the empty-round loop again — and must wake up
(and only then) on any event that can create work: dirty logging on a
registered table, registration, or a cold hint.  The short-circuit must
also preserve the table-cursor drift of the spin it replaces, which the
step-by-step policy-equivalence suite pins down; here we pin the O(1)
behaviour itself.
"""

import pytest

from repro.ksm import create_scanner
from repro.ksm.scanner import KsmConfig, KsmScanner, ScanPolicy
from repro.mem.address_space import PageTable
from repro.mem.physmem import HostPhysicalMemory
from repro.sim.clock import SimClock

ENGINES = ["object", "batch"]


def build(engine, policy=ScanPolicy.INCREMENTAL, tables=2, pages=8):
    physmem = HostPhysicalMemory(capacity_bytes=1 << 28, page_size=4096)
    scanner = create_scanner(
        physmem,
        SimClock(),
        KsmConfig(scan_policy=policy, scan_engine=engine),
    )
    made = []
    for t in range(tables):
        table = PageTable(f"t{t}")
        for vpn in range(pages):
            physmem.map_token(table, vpn, 1000 + t * pages + vpn)
        scanner.register(table)
        made.append(table)
    return physmem, scanner, made


def drain(scanner):
    """Scan until a call returns 0 (the idle fixpoint)."""
    for _ in range(100):
        if scanner.scan_pages(10_000) == 0:
            return
    raise AssertionError("scanner never drained")


class SpinCounter:
    """Counts workless table advances (the spin the guard removes)."""

    def __init__(self, scanner):
        self.scanner = scanner
        self.calls = 0
        self._orig = scanner._advance_table

    def __enter__(self):
        def counting():
            self.calls += 1
            return self._orig()

        self.scanner._advance_table = counting
        return self

    def __exit__(self, *exc):
        del self.scanner._advance_table
        return False


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    # FULL never idles while pages are mapped (every pass walks
    # everything); the fixpoint exists for incremental worklists.
    "policy",
    [ScanPolicy.INCREMENTAL, ScanPolicy.HYBRID],
)
def test_idle_scan_does_no_per_table_work(engine, policy):
    _, scanner, _ = build(engine, policy)
    drain(scanner)
    with SpinCounter(scanner) as spin:
        for _ in range(50):
            assert scanner.scan_pages(10_000) == 0
    # The old behaviour walked every table len+2 times per idle call;
    # the short-circuit must not advance tables at all.
    assert spin.calls == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_write_wakes_idle_scanner(engine):
    physmem, scanner, tables = build(engine)
    drain(scanner)
    assert scanner.scan_pages(10_000) == 0
    physmem.write_token(tables[0], 3, 9999)
    assert scanner.scan_pages(10_000) > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_unmap_wakes_idle_scanner(engine):
    physmem, scanner, tables = build(engine)
    drain(scanner)
    physmem.unmap(tables[1], 2)
    # The unmap is logged dirty; the scanner must process the drain
    # (pruning bookkeeping) rather than short-circuit forever.
    scanner.scan_pages(10_000)
    assert scanner.scan_pages(10_000) == 0
    assert 2 not in scanner._last_tokens[tables[1]]


@pytest.mark.parametrize("engine", ENGINES)
def test_cold_hint_wakes_idle_scanner(engine):
    _, scanner, tables = build(engine)
    drain(scanner)
    assert scanner.scan_pages(10_000) == 0
    assert scanner.hint_cold(tables[0], [1, 2]) == 2
    assert scanner.scan_pages(10_000) > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_register_wakes_idle_scanner(engine):
    physmem, scanner, _ = build(engine)
    drain(scanner)
    assert scanner.scan_pages(10_000) == 0
    extra = PageTable("late")
    for vpn in range(4):
        physmem.map_token(extra, vpn, 7000 + vpn)
    scanner.register(extra)
    assert scanner.scan_pages(10_000) > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_idle_calls_are_uncharged(engine):
    _, scanner, _ = build(engine)
    drain(scanner)
    before = scanner.snapshot_stats()
    for _ in range(10):
        scanner.run_for_ms(5)
    after = scanner.snapshot_stats()
    assert after.pages_scanned == before.pages_scanned
    assert after.full_scans == before.full_scans


@pytest.mark.parametrize("engine", ENGINES)
def test_idle_equivalence_with_reference_spin(engine):
    """The short-circuit replicates the retired spin's cursor drift:
    interleaving idle calls with real work must not change results."""

    def run(idle_calls):
        physmem, scanner, tables = build(engine, ScanPolicy.INCREMENTAL)
        drain(scanner)
        for _ in range(idle_calls):
            scanner.scan_pages(100)
        physmem.write_token(tables[0], 0, 4242)
        physmem.write_token(tables[1], 0, 4242)
        for _ in range(6):
            scanner.scan_pages(10_000)
        return scanner.snapshot_stats(), list(scanner.history)

    stats_none, hist_none = run(0)
    for idle in (1, 3, 7):
        stats, hist = run(idle)
        assert stats.merges == stats_none.merges
        # Idle calls record no passes, so history lengths agree too.
        assert len(hist) == len(hist_none)
