"""Unit tests for the cache-deployment flows (§IV.C)."""

import pytest

from repro.core.preload import (
    CacheDeployment,
    CacheProvisioner,
    build_cache_for_image,
)
from repro.sim.rng import RngFactory

from tests.conftest import tiny_workload

PAGE = 4096


class TestBuildCacheForImage:
    def test_cache_is_populated_and_sealed(self):
        workload = tiny_workload()
        base = build_cache_for_image(workload, PAGE, RngFactory(1))
        assert base.layout.sealed
        assert base.layout.stored_classes == len(
            workload.universe().cacheable_classes()
        )
        assert base.master_file.size_bytes == (
            workload.jvm_config.shared_cache_bytes
        )

    def test_copy_for_vm_preserves_content(self):
        workload = tiny_workload()
        base = build_cache_for_image(workload, PAGE, RngFactory(1))
        a = base.copy_for_vm("vm1")
        b = base.copy_for_vm("vm2")
        assert a.backing.file_id != b.backing.file_id
        assert [a.backing.page_token(i) for i in range(a.backing.npages)] == [
            b.backing.page_token(i) for i in range(b.backing.npages)
        ]
        assert a.layout is b.layout is base.layout


class TestProvisioner:
    def test_none_deployment(self):
        provisioner = CacheProvisioner(
            CacheDeployment.NONE, PAGE, RngFactory(1)
        )
        assert provisioner.cache_for(tiny_workload(), "vm1") is None

    def test_shared_copy_single_master(self):
        workload = tiny_workload()
        provisioner = CacheProvisioner(
            CacheDeployment.SHARED_COPY, PAGE, RngFactory(1)
        )
        a = provisioner.cache_for(workload, "vm1")
        b = provisioner.cache_for(workload, "vm2")
        assert a.layout is b.layout
        assert [a.backing.page_token(i) for i in range(a.backing.npages)] == [
            b.backing.page_token(i) for i in range(b.backing.npages)
        ]

    def test_per_vm_layouts_differ(self):
        workload = tiny_workload()
        provisioner = CacheProvisioner(
            CacheDeployment.PER_VM, PAGE, RngFactory(1)
        )
        a = provisioner.cache_for(workload, "vm1")
        b = provisioner.cache_for(workload, "vm2")
        assert a.layout is not b.layout
        tokens_a = [a.backing.page_token(i) for i in range(a.backing.npages)]
        tokens_b = [b.backing.page_token(i) for i in range(b.backing.npages)]
        assert tokens_a != tokens_b

    def test_same_middleware_same_cache_across_benchmarks(self):
        """All WAS workloads share the default WAS cache name, so one
        master file serves DayTrader, SPECj and TPC-W (§IV.B)."""
        from repro.config import Benchmark

        daytrader = tiny_workload(Benchmark.DAYTRADER)
        tpcw = tiny_workload(Benchmark.TPCW)
        provisioner = CacheProvisioner(
            CacheDeployment.SHARED_COPY, PAGE, RngFactory(1)
        )
        a = provisioner.cache_for(daytrader, "vm1")
        b = provisioner.cache_for(tpcw, "vm2")
        assert a.layout is b.layout
