"""Unit and property tests for page-content tokens (repro.mem.content)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.content import (
    Chunk,
    ZERO_TOKEN,
    page_tokens_for_chunks,
    uniform_tokens,
    zero_chunk,
)

PAGE = 4096


def chunks_strategy(max_chunks=8, max_size=3 * PAGE):
    return st.lists(
        st.builds(
            Chunk,
            content_id=st.integers(min_value=0, max_value=2**32),
            size=st.integers(min_value=1, max_value=max_size),
        ),
        min_size=0,
        max_size=max_chunks,
    )


class TestChunk:
    def test_zero_chunk(self):
        chunk = zero_chunk(100)
        assert chunk.is_zero
        assert chunk.size == 100

    def test_nonzero_chunk(self):
        assert not Chunk(5, 10).is_zero

    def test_empty_chunk_rejected(self):
        with pytest.raises(ValueError):
            Chunk(1, 0)

    def test_negative_content_rejected(self):
        with pytest.raises(ValueError):
            Chunk(-1, 8)


class TestPageTokens:
    def test_empty_sequence(self):
        assert page_tokens_for_chunks([], PAGE) == []

    def test_single_full_page(self):
        tokens = page_tokens_for_chunks([Chunk(7, PAGE)], PAGE)
        assert len(tokens) == 1
        assert tokens[0] != ZERO_TOKEN

    def test_zero_page_gets_zero_token(self):
        tokens = page_tokens_for_chunks([zero_chunk(PAGE)], PAGE)
        assert tokens == [ZERO_TOKEN]

    def test_partial_page_with_zero_rest_is_not_zero(self):
        tokens = page_tokens_for_chunks([Chunk(7, 100)], PAGE)
        assert tokens == [
            page_tokens_for_chunks([Chunk(7, 100)], PAGE)[0]
        ]
        assert tokens[0] != ZERO_TOKEN

    def test_identical_layout_identical_tokens(self):
        layout = [Chunk(1, 100), Chunk(2, PAGE), zero_chunk(50)]
        assert page_tokens_for_chunks(layout, PAGE) == page_tokens_for_chunks(
            list(layout), PAGE
        )

    def test_shifted_layout_differs(self):
        """The paper's alignment sensitivity: same data, new page offset,
        different page content."""
        layout = [Chunk(1, PAGE * 2)]
        aligned = page_tokens_for_chunks(layout, PAGE, base_offset=0)
        shifted = page_tokens_for_chunks(layout, PAGE, base_offset=64)
        assert set(aligned).isdisjoint(set(shifted))

    def test_reordered_chunks_differ(self):
        """The paper's load-order sensitivity."""
        a = page_tokens_for_chunks([Chunk(1, 600), Chunk(2, 600)], PAGE)
        b = page_tokens_for_chunks([Chunk(2, 600), Chunk(1, 600)], PAGE)
        assert a != b

    def test_interior_pages_of_large_chunk_identical_offsets(self):
        """A large chunk mapped at the same offset in two sequences yields
        the same page tokens for the pages it fully covers."""
        big = Chunk(9, PAGE * 3)
        a = page_tokens_for_chunks([big], PAGE)
        b = page_tokens_for_chunks([big, Chunk(1, 10)], PAGE)
        assert a[:3] == b[:3]

    def test_page_count(self):
        tokens = page_tokens_for_chunks([Chunk(1, PAGE + 1)], PAGE)
        assert len(tokens) == 2
        tokens = page_tokens_for_chunks(
            [Chunk(1, PAGE)], PAGE, base_offset=1
        )
        assert len(tokens) == 2

    def test_bad_base_offset_rejected(self):
        with pytest.raises(ValueError):
            page_tokens_for_chunks([Chunk(1, 10)], PAGE, base_offset=PAGE)
        with pytest.raises(ValueError):
            page_tokens_for_chunks([Chunk(1, 10)], PAGE, base_offset=-1)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            page_tokens_for_chunks([Chunk(1, 10)], 0)

    def test_mixed_zero_and_data_page(self):
        """Zero bytes adjacent to data still contribute to page identity
        via the data's in-page position, not their own content."""
        a = page_tokens_for_chunks([zero_chunk(64), Chunk(1, 64)], PAGE)
        b = page_tokens_for_chunks([zero_chunk(128), Chunk(1, 64)], PAGE)
        assert a != b  # the datum sits at a different offset

    @given(chunks=chunks_strategy())
    @settings(max_examples=60)
    def test_token_count_matches_span(self, chunks):
        total = sum(chunk.size for chunk in chunks)
        tokens = page_tokens_for_chunks(chunks, PAGE)
        expected = -(-total // PAGE) if total else 0
        assert len(tokens) == expected

    @given(chunks=chunks_strategy(), offset=st.integers(0, PAGE - 1))
    @settings(max_examples=60)
    def test_deterministic(self, chunks, offset):
        assert page_tokens_for_chunks(
            chunks, PAGE, offset
        ) == page_tokens_for_chunks(list(chunks), PAGE, offset)

    @given(chunks=chunks_strategy())
    @settings(max_examples=60)
    def test_all_zero_chunks_give_zero_tokens(self, chunks):
        zeroed = [zero_chunk(chunk.size) for chunk in chunks]
        tokens = page_tokens_for_chunks(zeroed, PAGE)
        assert all(token == ZERO_TOKEN for token in tokens)


class TestUniformTokens:
    def test_zero_content(self):
        assert uniform_tokens([0, 0], PAGE) == [ZERO_TOKEN, ZERO_TOKEN]

    def test_matches_full_page_chunk(self):
        token = uniform_tokens([42], PAGE)[0]
        assert token == page_tokens_for_chunks([Chunk(42, PAGE)], PAGE)[0]

    def test_distinct_ids_distinct_tokens(self):
        tokens = uniform_tokens([1, 2, 3], PAGE)
        assert len(set(tokens)) == 3


class TestTokenMemo:
    """The memoized token path must be invisible except for speed."""

    def test_memo_matches_direct_hash(self):
        from repro.mem.content import token_memo_clear
        from repro.sim.rng import stable_hash64

        token_memo_clear()
        for content_id in (1, 7, 1 << 40):
            assert uniform_tokens([content_id], PAGE) == [
                stable_hash64("page", content_id, 0, PAGE, 0)
            ]
        chunks = [Chunk(9, PAGE // 2), Chunk(11, PAGE // 2)]
        expected = stable_hash64(
            "page", 9, 0, PAGE // 2, 0, 11, 0, PAGE // 2, PAGE // 2
        )
        assert page_tokens_for_chunks(chunks, PAGE) == [expected]

    def test_repeated_layouts_hit_the_memo(self):
        from repro.mem.content import token_memo_clear, token_memo_stats

        token_memo_clear()
        first = uniform_tokens([3, 4, 5], PAGE)
        cold = token_memo_stats()
        assert cold["misses"] == 3 and cold["hits"] == 0
        second = uniform_tokens([3, 4, 5], PAGE)
        warm = token_memo_stats()
        assert second == first
        assert warm["misses"] == 3 and warm["hits"] == 3

    def test_memo_keys_include_page_size(self):
        from repro.mem.content import token_memo_clear

        token_memo_clear()
        assert uniform_tokens([6], PAGE) != uniform_tokens([6], PAGE * 2)
