"""Integration tests for sharing-aware placement (Memory Buddies, §VI)."""

import pytest

from repro.config import Benchmark
from repro.core.experiments.testbed import scale_workload
from repro.core.preload import CacheDeployment
from repro.datacenter.placement import (
    Datacenter,
    FirstFitPolicy,
    PlacementError,
    SharingAwarePolicy,
    VmRequest,
)
from repro.units import MiB
from repro.workloads.base import build_workload

from tests.conftest import tiny_kernel_profile

SCALE = 0.03


def make_datacenter(hosts=2, host_ram=64 * MiB):
    return Datacenter(
        host_count=hosts,
        host_ram_bytes=host_ram,
        kernel_profile=tiny_kernel_profile(),
        deployment=CacheDeployment.SHARED_COPY,
        qemu_overhead_bytes=1 << 16,
    )


def request(name, benchmark=Benchmark.DAYTRADER, preload=True):
    workload = scale_workload(build_workload(benchmark), SCALE)
    return VmRequest(name, workload, 48 * MiB, preload=preload)


class TestFirstFit:
    def test_fills_hosts_in_order(self):
        datacenter = make_datacenter(hosts=2, host_ram=128 * MiB)
        policy = FirstFitPolicy()
        for index in range(3):
            datacenter.place(request(f"vm{index}"), policy)
        assert datacenter.placement_of("vm0") == "host1"
        assert datacenter.placement_of("vm1") == "host1"
        assert datacenter.placement_of("vm2") == "host2"

    def test_rejects_when_full(self):
        datacenter = make_datacenter(hosts=1, host_ram=64 * MiB)
        policy = FirstFitPolicy()
        datacenter.place(request("vm0"), policy)
        with pytest.raises(PlacementError):
            datacenter.place(request("vm1"), policy)

    def test_duplicate_name_rejected(self):
        datacenter = make_datacenter(hosts=2, host_ram=128 * MiB)
        policy = FirstFitPolicy()
        datacenter.place(request("vm0"), policy)
        with pytest.raises(ValueError):
            datacenter.place(request("vm0"), policy)


class TestSharingAware:
    def test_collocates_with_the_matching_seed(self):
        """One DayTrader and one Tuscany VM already run on separate hosts;
        the sharing-aware policy routes each newcomer to its twin (the
        policy also sees the cross-workload sharing — same JVM build, same
        kernel image — but the same-workload host always scores higher)."""
        datacenter = make_datacenter(hosts=2, host_ram=128 * MiB)
        datacenter.place_on(request("dt1", Benchmark.DAYTRADER), "host1")
        datacenter.place_on(
            request("tu1", Benchmark.TUSCANY_BIGBANK), "host2"
        )
        policy = SharingAwarePolicy(bits=1 << 17)
        datacenter.place(request("tu2", Benchmark.TUSCANY_BIGBANK), policy)
        datacenter.place(request("dt2", Benchmark.DAYTRADER), policy)
        assert datacenter.placement_of("dt2") == "host1"
        assert datacenter.placement_of("tu2") == "host2"

    def test_beats_first_fit_on_saved_memory(self):
        """The point of the policy: collocated identical workloads merge
        more memory after KSM converges."""

        def run(policy):
            datacenter = make_datacenter(hosts=2, host_ram=128 * MiB)
            datacenter.place_on(
                request("dt1", Benchmark.DAYTRADER), "host1"
            )
            datacenter.place_on(
                request("tu1", Benchmark.TUSCANY_BIGBANK), "host2"
            )
            # Arrival order that misleads first-fit (host1 has room).
            datacenter.place(
                request("tu2", Benchmark.TUSCANY_BIGBANK), policy
            )
            datacenter.place(request("dt2", Benchmark.DAYTRADER), policy)
            datacenter.converge_all()
            return datacenter.total_saved_bytes()

        first_fit_saved = run(FirstFitPolicy())
        sharing_saved = run(SharingAwarePolicy(bits=1 << 17))
        assert sharing_saved > first_fit_saved * 1.2

    def test_respects_capacity(self):
        datacenter = make_datacenter(hosts=1, host_ram=64 * MiB)
        policy = SharingAwarePolicy()
        datacenter.place(request("vm0"), policy)
        with pytest.raises(PlacementError):
            datacenter.place(request("vm1"), policy)

    def test_reference_fingerprint_cached(self):
        datacenter = make_datacenter(hosts=2, host_ram=128 * MiB)
        req = request("vm0")
        a = datacenter.reference_fingerprint(req, 1 << 12, 4)
        b = datacenter.reference_fingerprint(
            request("vm1"), 1 << 12, 4
        )
        assert a is b  # same workload+preload => cached


class TestDeployRollback:
    def test_failed_boot_leaves_no_phantom_vm(self, monkeypatch):
        datacenter = make_datacenter(hosts=1, host_ram=128 * MiB)
        host = datacenter.hosts[0]
        from repro.jvm.jvm import JavaVM

        def explode(self):
            raise RuntimeError("JVM refused to start")

        monkeypatch.setattr(JavaVM, "startup", explode)
        with pytest.raises(RuntimeError):
            datacenter.place(request("vm0"), FirstFitPolicy())
        # The half-created guest must be fully rolled back: no committed
        # memory, no registered kernel/JVM, no guest on the hypervisor,
        # and no placement record.
        assert host.committed_bytes == 0
        assert host.kernels == {}
        assert host.jvms == {}
        assert host.kvm.guests == []
        with pytest.raises(KeyError):
            datacenter.placement_of("vm0")

    def test_name_is_reusable_after_failed_deploy(self, monkeypatch):
        datacenter = make_datacenter(hosts=1, host_ram=128 * MiB)
        from repro.jvm.jvm import JavaVM

        original = JavaVM.startup
        calls = []

        def explode_once(self):
            if not calls:
                calls.append(1)
                raise RuntimeError("transient boot failure")
            return original(self)

        monkeypatch.setattr(JavaVM, "startup", explode_once)
        with pytest.raises(RuntimeError):
            datacenter.place(request("vm0"), FirstFitPolicy())
        host = datacenter.place(request("vm0"), FirstFitPolicy())
        assert datacenter.placement_of("vm0") == host.name
        assert host.committed_bytes == 48 * MiB
