"""Unit tests for the glibc malloc model (§III.B alignment behaviour)."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.guestos.malloc import (
    CHUNK_HEADER,
    MMAP_THRESHOLD,
    MallocModel,
)
from repro.hypervisor.kvm import KvmHost
from repro.units import KiB, MiB

PAGE = 4096


def make_process(seed=3, vm_name="vm1"):
    host = KvmHost(128 * MiB, seed=seed)
    vm = host.create_guest(vm_name, 32 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g", vm_name))
    return host, kernel.spawn("java")


class TestMmapPath:
    def test_large_allocation_uses_mmap(self):
        host, process = make_process()
        malloc = MallocModel(process, host.rng.derive("m"))
        block = malloc.malloc(MMAP_THRESHOLD)
        assert block.from_mmap

    def test_mmap_block_fixed_page_offset(self):
        """≥128 KiB blocks start at a fixed offset from a page boundary in
        every process — the paper's native-sharing argument."""
        offsets = []
        for seed in (1, 2, 3):
            host, process = make_process(seed=seed)
            malloc = MallocModel(process, host.rng.derive("m"))
            block = malloc.malloc(256 * KiB)
            offsets.append(block.page_offset)
        assert offsets == [CHUNK_HEADER] * 3

    def test_mmap_block_own_vma(self):
        host, process = make_process()
        malloc = MallocModel(process, host.rng.derive("m"))
        a = malloc.malloc(256 * KiB)
        b = malloc.malloc(256 * KiB)
        assert a.vma is not b.vma


class TestArenaPath:
    def test_small_allocation_uses_arena(self):
        host, process = make_process()
        malloc = MallocModel(process, host.rng.derive("m"))
        block = malloc.malloc(100)
        assert not block.from_mmap
        assert malloc.arena_count == 1

    def test_small_allocations_share_arena(self):
        host, process = make_process()
        malloc = MallocModel(process, host.rng.derive("m"))
        a = malloc.malloc(100)
        b = malloc.malloc(100)
        assert a.vma is b.vma
        assert b.offset_bytes > a.offset_bytes

    def test_arena_offsets_differ_between_processes(self):
        """The history-dependent arena start: same allocation sequence,
        different page alignment per process."""
        offsets = set()
        for seed in range(6):
            host, process = make_process(seed=seed)
            malloc = MallocModel(process, host.rng.derive("m"))
            offsets.add(malloc.malloc(100).page_offset)
        assert len(offsets) > 1

    def test_arena_alignment(self):
        host, process = make_process()
        malloc = MallocModel(process, host.rng.derive("m"))
        for size in (10, 100, 1000):
            block = malloc.malloc(size)
            assert block.offset_bytes % CHUNK_HEADER == 0

    def test_arena_grows_when_full(self):
        host, process = make_process()
        malloc = MallocModel(process, host.rng.derive("m"))
        for _ in range(40):
            malloc.malloc(120 * KiB)  # below the mmap threshold
        assert malloc.arena_count > 1

    def test_zero_size_rejected(self):
        host, process = make_process()
        malloc = MallocModel(process, host.rng.derive("m"))
        with pytest.raises(ValueError):
            malloc.malloc(0)


class TestBlockGeometry:
    def test_first_page_and_offset(self):
        host, process = make_process()
        malloc = MallocModel(process, host.rng.derive("m"))
        block = malloc.malloc(256 * KiB)
        assert block.first_page == 0
        assert block.page_offset == block.offset_bytes % PAGE

    def test_blocks_recorded(self):
        host, process = make_process()
        malloc = MallocModel(process, host.rng.derive("m"))
        malloc.malloc(10)
        malloc.malloc(MMAP_THRESHOLD)
        assert len(malloc.blocks) == 2
