"""Edge-case tests for result containers and small helpers."""

import pytest

from repro.core.accounting import CategoryUsage
from repro.core.breakdown import JavaBreakdown, JavaProcessRow
from repro.core.experiments.consolidation import (
    ConsolidationPoint,
    ConsolidationResult,
    Footprint,
)
from repro.config import Benchmark
from repro.ksm.stats import KsmStats
from repro.units import MiB


class TestKsmStats:
    def test_pages_saved_never_negative(self):
        stats = KsmStats(pages_shared=5, pages_sharing=3)
        assert stats.pages_saved == 0

    def test_cpu_percent_with_no_elapsed_time(self):
        assert KsmStats(cpu_ms=10).cpu_percent == 0.0

    def test_str_contains_key_numbers(self):
        text = str(KsmStats(pages_shared=2, pages_sharing=7, full_scans=3))
        assert "shared=2" in text
        assert "sharing=7" in text
        assert "saved=5" in text


class TestCategoryUsage:
    def test_total(self):
        cell = CategoryUsage(usage_bytes=10, shared_bytes=5)
        assert cell.total_bytes == 15

    def test_defaults(self):
        assert CategoryUsage().total_bytes == 0


class TestJavaBreakdownContainers:
    def test_row_lookup_error(self):
        breakdown = JavaBreakdown(rows=[])
        with pytest.raises(KeyError):
            breakdown.row("vm1")

    def test_owner_of_single_row(self):
        row = JavaProcessRow(vm_name="vm1", vm_index=0, pid=42)
        breakdown = JavaBreakdown(rows=[row])
        assert breakdown.owner_row() is row
        assert breakdown.non_primary_rows() == []

    def test_shared_fraction_of_empty_category(self):
        from repro.core.categories import MemoryCategory

        row = JavaProcessRow(vm_name="vm1", vm_index=0, pid=42)
        assert row.shared_fraction(MemoryCategory.JAVA_HEAP) == 0.0


class TestConsolidationContainers:
    def make_result(self):
        result = ConsolidationResult(
            benchmark=Benchmark.DAYTRADER,
            vm_counts=[1, 2, 3],
            footprints={
                "default": Footprint(1000 * MiB, 100 * MiB),
            },
        )
        result.points["default"] = [
            ConsolidationPoint(1, 1000.0, 1.0, 30.0),
            ConsolidationPoint(2, 1900.0, 0.9, 55.0),
            ConsolidationPoint(3, 2800.0, 0.2, 18.0),
        ]
        return result

    def test_series(self):
        result = self.make_result()
        assert result.series("default") == [30.0, 55.0, 18.0]

    def test_max_acceptable_threshold(self):
        result = self.make_result()
        assert result.max_acceptable_vms("default") == 2
        assert result.max_acceptable_vms(
            "default", acceptable_fraction=0.95
        ) == 1
        assert result.max_acceptable_vms(
            "default", acceptable_fraction=0.1
        ) == 3

    def test_footprint_marginal(self):
        footprint = Footprint(1000 * MiB, 100 * MiB)
        assert footprint.marginal_vm_bytes == 900 * MiB
