"""Canonical fingerprinting (repro.exec.fingerprint)."""

import dataclasses
import enum

import pytest

from repro.core.experiments.scenarios import ScenarioRequest
from repro.core.preload import CacheDeployment
from repro.exec.fingerprint import canonical, fingerprint64, fingerprint_hex
from repro.faults import FaultPlan
from repro.faults.plan import FaultRates
from repro.workloads.base import build_workload
from repro.config import Benchmark


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclasses.dataclass
class Point:
    x: int
    y: int


class TestCanonical:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "s", b"b"):
            assert canonical(value) == value

    def test_enum(self):
        assert canonical(Color.RED) == ("enum", "Color", "red")

    def test_dataclass_structural(self):
        assert canonical(Point(1, 2)) == (
            "dataclass", "Point", (("x", 1), ("y", 2))
        )

    def test_dict_order_invariant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_set_order_invariant(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_unsupported_object_raises(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_fault_plan_identity(self):
        a = FaultPlan(7)
        b = FaultPlan(7)
        c = FaultPlan(8)
        d = FaultPlan(7, FaultRates.uniform(0.5))
        assert canonical(a) == canonical(b)
        assert canonical(a) != canonical(c)
        assert canonical(a) != canonical(d)

    def test_workload_identity_ignores_lazy_universe(self):
        a = build_workload(Benchmark.DAYTRADER)
        b = build_workload(Benchmark.DAYTRADER)
        b.universe()  # force the lazy cache on one of them
        assert canonical(a) == canonical(b)
        assert canonical(a) != canonical(build_workload(Benchmark.TPCW))


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint64("x", 1) == fingerprint64("x", 1)

    def test_hex_width(self):
        assert len(fingerprint_hex("anything")) == 16

    def test_nonzero(self):
        assert fingerprint64() != 0


class TestScenarioRequestFingerprint:
    """Regression for the old benchmark-session cache bug: the key must
    change whenever *any* input that affects the result changes —
    the old dict keyed only on (scenario, deployment) and could serve a
    stale result after REPRO_BENCH_SCALE/TICKS changed mid-session."""

    BASE = ScenarioRequest(
        "daytrader4", CacheDeployment.NONE, scale=0.1,
        measurement_ticks=4, seed=1, scan_policy="full",
    )

    @pytest.mark.parametrize(
        "change",
        [
            {"scenario": "mixed3"},
            {"deployment": CacheDeployment.SHARED_COPY},
            {"scale": 0.2},
            {"measurement_ticks": 6},
            {"seed": 2},
            {"scan_policy": "incremental"},
            {"faults": FaultPlan(1337)},
        ],
    )
    def test_any_field_change_changes_fingerprint(self, change):
        changed = dataclasses.replace(self.BASE, **change)
        assert fingerprint64(self.BASE.cache_parts()) != fingerprint64(
            changed.cache_parts()
        )

    def test_equal_requests_share_fingerprint(self):
        clone = dataclasses.replace(self.BASE)
        assert fingerprint64(self.BASE.cache_parts()) == fingerprint64(
            clone.cache_parts()
        )


def _module_level_fn():
    return None


class TestCallableCanonical:
    def test_functions_canonicalize_by_location(self):
        from repro.exec.fingerprint import canonical

        assert canonical(_module_level_fn) == (
            "fn", __name__, "_module_level_fn"
        )

    def test_workunit_with_fn_field_fingerprints(self):
        from repro.exec.fingerprint import fingerprint64
        from repro.exec.runner import WorkUnit

        unit = WorkUnit(fn=_module_level_fn, args=(1, 2))
        assert fingerprint64(unit) == fingerprint64(
            WorkUnit(fn=_module_level_fn, args=(1, 2))
        )
        assert fingerprint64(unit) != fingerprint64(
            WorkUnit(fn=_module_level_fn, args=(1, 3))
        )
