"""Unit tests for the three-layer translation walk."""

import pytest

from repro.core.dump import collect_system_dump
from repro.core.translate import (
    iter_process_frames,
    iter_vm_process_pages,
    qemu_table_name,
    resolve_gfn,
    resolve_process_page,
)
from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.units import MiB

PAGE = 4096


@pytest.fixture
def env():
    host = KvmHost(64 * MiB, seed=9)
    vm = host.create_guest("vm1", 4 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g"))
    java = kernel.spawn("java")
    heap = java.mmap_anon(4 * PAGE, "java:heap")
    java.write_tokens(heap, [10, 20])  # pages 0,1 backed; 2,3 not
    dump = collect_system_dump(host, {"vm1": kernel})
    guest = dump.guest("vm1")
    process = guest.processes[0]
    return host, dump, guest, process, heap


class TestResolve:
    def test_backed_page_resolves_through_all_layers(self, env):
        host, dump, guest, process, heap = env
        resolution = resolve_process_page(
            dump, guest, process, heap.start_vpn
        )
        assert resolution.backed
        assert resolution.gfn is not None
        assert resolution.host_vpn == guest.translate_gfn(resolution.gfn)
        frame = host.physmem.get_frame(resolution.frame_id)
        assert frame.token == 10

    def test_unbacked_page_stops_at_first_layer(self, env):
        _host, dump, guest, process, heap = env
        resolution = resolve_process_page(
            dump, guest, process, heap.start_vpn + 3
        )
        assert not resolution.backed
        assert resolution.gfn is None

    def test_resolve_gfn(self, env):
        _host, dump, guest, process, heap = env
        gfn = process.page_table[heap.start_vpn]
        assert resolve_gfn(dump, guest, gfn) is not None

    def test_resolve_gfn_outside_slots(self, env):
        _host, dump, guest, _process, _heap = env
        assert resolve_gfn(dump, guest, 10**9) is None


class TestIteration:
    def test_iter_process_frames_yields_backed_only(self, env):
        _host, dump, guest, process, heap = env
        frames = list(iter_process_frames(dump, guest, process))
        assert len(frames) == 2
        for vpn, gfn, fid, vma in frames:
            assert vma.tag == "java:heap"
            assert fid is not None

    def test_iter_vm_process_pages_includes_overhead(self, env):
        host, dump, guest, _process, _heap = env
        host.guest("vm1").allocate_overhead(PAGE)
        dump2 = collect_system_dump(host, {})
        pages = list(
            iter_vm_process_pages(dump2, guest)
        )
        # 2 guest pages + kernel pages (none booted) + 1 overhead page
        assert len(pages) >= 3

    def test_qemu_table_name(self):
        assert qemu_table_name("vm7") == "host:qemu-vm7"
