"""The parallel runner (repro.exec.runner): fan-out, fallback, retry."""

import multiprocessing
import os

import pytest

from repro.errors import ReproError, TransientDumpError
from repro.exec.runner import (
    ENV_JOBS,
    ParallelRunner,
    RunnerStats,
    WorkUnit,
    resolve_jobs,
)
from repro.faults.plan import BACKOFF_SCHEDULE_MS, MAX_DUMP_ATTEMPTS
from repro.sim.rng import stable_hash64


def square_hash(value):
    """A pure module-level unit body (picklable for pool workers)."""
    return stable_hash64("unit", value) % 1000


def crash_in_worker(value):
    """Dies hard in a pool worker; computes normally in-process."""
    if multiprocessing.parent_process() is not None:
        os._exit(3)
    return ("survived", value)


class FlakyFn:
    """Fails transiently a fixed number of times, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, value):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientDumpError(f"attempt {self.calls} failed")
        return value * 2


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs() == 1

    def test_env(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "3")
        assert resolve_jobs() == 3

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "3")
        assert resolve_jobs(2) == 2

    def test_clamped_to_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1

    def test_bad_env_raises_cleanly(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "many")
        with pytest.raises(ReproError):
            resolve_jobs()


class TestWorkUnit:
    def test_fingerprint_stable_and_arg_sensitive(self):
        a = WorkUnit(square_hash, (1,))
        assert a.fingerprint() == WorkUnit(square_hash, (1,)).fingerprint()
        assert a.fingerprint() != WorkUnit(square_hash, (2,)).fingerprint()


class TestMap:
    UNITS = [WorkUnit(square_hash, (value,)) for value in range(8)]

    def test_empty(self):
        assert ParallelRunner(jobs=4).map([]) == []

    def test_serial_order_preserved(self):
        assert ParallelRunner(jobs=1).map(self.UNITS) == [
            square_hash(value) for value in range(8)
        ]

    def test_parallel_equals_serial(self):
        serial = ParallelRunner(jobs=1).map(self.UNITS)
        parallel = ParallelRunner(jobs=4).map(self.UNITS)
        assert parallel == serial

    def test_parallel_stats(self):
        stats = RunnerStats()
        ParallelRunner(jobs=4, stats=stats).map(self.UNITS)
        assert stats.parallel_units + stats.serial_units == 8

    def test_worker_crash_falls_back_in_process(self):
        stats = RunnerStats()
        runner = ParallelRunner(jobs=2, stats=stats)
        units = [WorkUnit(crash_in_worker, (value,)) for value in range(2)]
        assert runner.map(units) == [("survived", 0), ("survived", 1)]
        assert stats.pool_fallbacks >= 1
        assert stats.serial_units == 2

    def test_deterministic_error_propagates(self):
        def boom(value):
            raise ValueError(f"bad unit {value}")

        with pytest.raises(ValueError):
            ParallelRunner(jobs=1).map([WorkUnit(boom, (1,))])


class TestRetry:
    def test_transient_failure_retried_with_fault_backoff(self):
        delays = []
        stats = RunnerStats()
        runner = ParallelRunner(
            jobs=1, sleep=delays.append, stats=stats
        )
        flaky = FlakyFn(failures=2)
        assert runner.map([WorkUnit(flaky, (21,))]) == [42]
        assert flaky.calls == 3
        assert stats.retries == 2
        # The backoff schedule is the dump collector's, in seconds.
        assert delays == [ms / 1000.0 for ms in BACKOFF_SCHEDULE_MS[:2]]

    def test_retries_are_bounded(self):
        runner = ParallelRunner(jobs=1, sleep=lambda _s: None)
        flaky = FlakyFn(failures=MAX_DUMP_ATTEMPTS)
        with pytest.raises(TransientDumpError):
            runner.map([WorkUnit(flaky, (1,))])
        assert flaky.calls == MAX_DUMP_ATTEMPTS


class TestMapChunked:
    UNITS = [WorkUnit(square_hash, (value,)) for value in range(23)]
    EXPECTED = [square_hash(value) for value in range(23)]

    def test_serial_matches_map(self):
        runner = ParallelRunner(jobs=1)
        assert runner.map_chunked(self.UNITS) == self.EXPECTED

    def test_parallel_matches_serial_at_any_chunk_size(self):
        for chunk_size in (None, 1, 4, 100):
            runner = ParallelRunner(jobs=3)
            assert (
                runner.map_chunked(self.UNITS, chunk_size=chunk_size)
                == self.EXPECTED
            ), chunk_size

    def test_empty_input(self):
        assert ParallelRunner(jobs=2).map_chunked([]) == []
