"""Unit tests for ballooning (the §VI alternative to TPS)."""

import pytest

from repro.guestos.kernel import GuestKernel, OwnerKind, PageOwner
from repro.guestos.pagecache import BackingFile
from repro.hypervisor.balloon import BalloonDriver, BalloonManager
from repro.hypervisor.kvm import KvmHost
from repro.units import MiB

PAGE = 4096


def make_guest(host, name="vm1", memory=2 * MiB):
    vm = host.create_guest(name, memory)
    kernel = GuestKernel(vm, host.rng.derive("g", name))
    return vm, kernel


@pytest.fixture
def host():
    return KvmHost(64 * MiB, seed=5)


class TestBalloonDriver:
    def test_inflate_releases_host_backing(self, host):
        vm, kernel = make_guest(host)
        # Touch some pages, then free them in the guest (host still pays).
        gfns = []
        for _ in range(8):
            gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="x"))
            vm.write_gfn(gfn, 123)
            gfns.append(gfn)
        for gfn in gfns:
            kernel.free_gfn(gfn)
        assert host.physmem.frames_in_use == 8  # dirty-free: host pays
        balloon = BalloonDriver(vm, kernel)
        reclaimed = balloon.inflate(8 * PAGE)
        assert reclaimed == 8 * PAGE
        assert host.physmem.frames_in_use == 0
        assert balloon.inflated_bytes == 8 * PAGE

    def test_inflate_evicts_clean_page_cache(self, host):
        vm, kernel = make_guest(host)
        backing = BackingFile("img:/data", 4 * PAGE, PAGE)
        for index in range(4):
            kernel.page_cache.page_gfn(backing, index)
        # Exhaust the rest of guest memory so the free list is empty.
        while True:
            try:
                kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="fill"))
            except Exception:
                break
        balloon = BalloonDriver(vm, kernel)
        reclaimed = balloon.inflate(4 * PAGE)
        assert reclaimed == 4 * PAGE
        assert kernel.page_cache.cached_pages == 0

    def test_mapped_cache_pages_not_evicted(self, host):
        vm, kernel = make_guest(host)
        process = kernel.spawn("p")
        backing = BackingFile("img:/bin", PAGE, PAGE)
        vma = process.mmap_file(backing, "text")
        process.fault_file_pages(vma)
        evicted = kernel.page_cache.evict_unmapped(10)
        assert evicted == 0
        assert kernel.page_cache.cached_pages == 1

    def test_deflate_returns_pages(self, host):
        vm, kernel = make_guest(host)
        balloon = BalloonDriver(vm, kernel)
        balloon.inflate(4 * PAGE)
        inflated = balloon.inflated_pages
        returned = balloon.deflate(2 * PAGE)
        assert returned == 2 * PAGE
        assert balloon.inflated_pages == inflated - 2
        # Returned pages are allocatable again.
        kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="y"))

    def test_mismatched_kernel_rejected(self, host):
        vm1, kernel1 = make_guest(host, "vm1")
        vm2, _kernel2 = make_guest(host, "vm2")
        with pytest.raises(ValueError):
            BalloonDriver(vm2, kernel1)

    def test_inflate_stops_when_nothing_reclaimable(self, host):
        vm, kernel = make_guest(host, memory=16 * PAGE)
        balloon = BalloonDriver(vm, kernel)
        reclaimed = balloon.inflate(64 * PAGE)  # more than the guest has
        assert reclaimed <= 16 * PAGE

    def test_min_free_pages_keeps_headroom(self, host):
        vm, kernel = make_guest(host, memory=16 * PAGE)
        balloon = BalloonDriver(vm, kernel)
        balloon.inflate(64 * PAGE, min_free_pages=4)
        assert kernel.free_pages >= 4
        # The spared headroom is still allocatable.
        for _ in range(4):
            kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="w"))

    def test_deflate_on_oom_rescues_allocation(self, host):
        """virtio-balloon F_DEFLATE_ON_OOM: an allocation that would fail
        pops the balloon instead of OOM-killing the guest."""
        vm, kernel = make_guest(host, memory=16 * PAGE)
        balloon = BalloonDriver(vm, kernel)
        balloon.inflate(16 * PAGE)  # swallow the whole guest
        assert kernel.free_pages == 0
        gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="late"))
        assert gfn is not None
        assert balloon.oom_deflates == 1
        assert balloon.inflated_pages < 16

    def test_oom_raises_when_balloon_empty(self, host):
        from repro.guestos.kernel import OutOfGuestMemoryError

        vm, kernel = make_guest(host, memory=4 * PAGE)
        BalloonDriver(vm, kernel)  # installs the handler; balloon empty
        for _ in range(4):
            kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="fill"))
        with pytest.raises(OutOfGuestMemoryError):
            kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="one-more"))


class TestBalloonManager:
    def test_noop_when_host_fits(self, host):
        vm, kernel = make_guest(host)
        manager = BalloonManager(host)
        manager.attach(BalloonDriver(vm, kernel))
        assert manager.rebalance() == []

    def test_rebalance_reclaims_deficit(self):
        host = KvmHost(1 * MiB, seed=5)  # tiny host: pressure guaranteed
        vm, kernel = make_guest(host, memory=2 * MiB)
        gfns = []
        for _ in range(512):  # 2 MiB of touched guest pages
            gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="x"))
            vm.write_gfn(gfn, 7)
            gfns.append(gfn)
        for gfn in gfns:  # freed in the guest, but the host still pays
            kernel.free_gfn(gfn)
        assert host.physmem.overcommitted_bytes > 0
        manager = BalloonManager(host)
        manager.attach(BalloonDriver(vm, kernel))
        plans = manager.rebalance()
        assert len(plans) == 1
        assert plans[0].reclaimed_bytes > 0
        assert host.physmem.overcommitted_bytes == 0

    def test_double_attach_rejected(self, host):
        vm, kernel = make_guest(host)
        manager = BalloonManager(host)
        driver = BalloonDriver(vm, kernel)
        manager.attach(driver)
        with pytest.raises(ValueError):
            manager.attach(BalloonDriver(vm, kernel))

    def _pressured_host_two_guests(self):
        host = KvmHost(1 * MiB, seed=5)
        guests = {}
        for name in ("vm1", "vm2"):
            vm, kernel = make_guest(host, name, memory=1 * MiB)
            gfns = []
            for _ in range(256):
                gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="x"))
                vm.write_gfn(gfn, 7)
                gfns.append(gfn)
            for gfn in gfns:
                kernel.free_gfn(gfn)
            guests[name] = (vm, kernel)
        assert host.physmem.overcommitted_bytes > 0
        return host, guests

    def test_plans_report_true_cumulative_ask(self):
        """Regression: target_bytes must sum exactly the inflate requests
        issued to the guest — not a per-round estimate."""
        host, guests = self._pressured_host_two_guests()
        manager = BalloonManager(host)
        issued = {}
        for name, (vm, kernel) in guests.items():
            driver = BalloonDriver(vm, kernel)
            original = driver.inflate
            issued[name] = []

            def spy(num_bytes, min_free_pages=0, _orig=original, _log=issued[name]):
                _log.append(num_bytes)
                return _orig(num_bytes, min_free_pages)

            driver.inflate = spy
            manager.attach(driver)
        plans = {p.vm_name: p for p in manager.rebalance()}
        for name in guests:
            assert plans[name].target_bytes == sum(issued[name])

    def test_zero_reclaim_guests_still_in_plans(self):
        """Regression: a guest asked to balloon but unable to reclaim
        must appear in the plans (reclaimed_bytes == 0), so callers can
        see the deficit is unresolvable."""
        host = KvmHost(1 * MiB, seed=5)
        # vm1: every page still in use — nothing the balloon can take.
        vm1, kernel1 = make_guest(host, "vm1", memory=1 * MiB)
        for _ in range(256):
            gfn = kernel1.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="x"))
            vm1.write_gfn(gfn, 7)
        # vm2: same footprint, but freed in the guest (host still pays).
        vm2, kernel2 = make_guest(host, "vm2", memory=1 * MiB)
        gfns = []
        for _ in range(256):
            gfn = kernel2.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="x"))
            vm2.write_gfn(gfn, 7)
            gfns.append(gfn)
        for gfn in gfns:
            kernel2.free_gfn(gfn)
        assert host.physmem.overcommitted_bytes > 0
        manager = BalloonManager(host)
        manager.attach(BalloonDriver(vm1, kernel1))
        manager.attach(BalloonDriver(vm2, kernel2))
        plans = {p.vm_name: p for p in manager.rebalance()}
        assert set(plans) == {"vm1", "vm2"}
        assert plans["vm1"].reclaimed_bytes == 0
        assert plans["vm1"].target_bytes > 0
        assert plans["vm2"].reclaimed_bytes > 0

    def test_weights_steer_the_squeeze(self):
        host, guests = self._pressured_host_two_guests()
        manager = BalloonManager(host)
        drivers = {}
        for name, (vm, kernel) in guests.items():
            drivers[name] = BalloonDriver(vm, kernel)
            manager.attach(drivers[name])
        plans = {
            p.vm_name: p
            for p in manager.rebalance(
                weights={"vm1": 1_000_000, "vm2": 1}, max_rounds=1
            )
        }
        assert plans["vm1"].target_bytes > plans["vm2"].target_bytes
        assert (
            drivers["vm1"].inflated_pages > drivers["vm2"].inflated_pages
        )

    def test_zero_weight_guests_never_asked(self):
        host, guests = self._pressured_host_two_guests()
        manager = BalloonManager(host)
        for name, (vm, kernel) in guests.items():
            manager.attach(BalloonDriver(vm, kernel))
        plans = {
            p.vm_name: p
            for p in manager.rebalance(weights={"vm1": 0, "vm2": 1})
        }
        assert plans["vm1"].target_bytes == 0
        assert plans["vm1"].reclaimed_bytes == 0
        assert plans["vm2"].reclaimed_bytes > 0
