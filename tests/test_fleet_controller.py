"""Tests for the chaos engine and the self-healing fleet control loop."""

import pytest

from repro.core.validate import validate_fleet
from repro.datacenter.chaos import ChaosEngine, DEFAULT_FLEET_RATES
from repro.datacenter.controller import (
    FleetController,
    FleetScenario,
    run_fleet_scenario,
)
from repro.datacenter.events import FleetEventKind
from repro.datacenter.fleet import (
    Fleet,
    FleetSharingAware,
    HostState,
    ImageCatalog,
    generate_arrivals,
)
from repro.errors import FaultSpecError
from repro.faults.plan import FaultKind, FaultPlan
from repro.units import GiB

HORIZON_MS = 600_000


def make_engine(rate=0.3, seed=99):
    from repro.faults.plan import FaultRates

    return ChaosEngine(
        FaultPlan(seed, FaultRates.fleet_uniform(rate)), HORIZON_MS
    )


class TestChaosEngine:
    def test_schedule_is_deterministic(self):
        names = [f"h{i:04d}" for i in range(40)]
        assert make_engine().schedule(names) == make_engine().schedule(names)

    def test_fault_windows_are_paired(self):
        events = make_engine(rate=0.5).schedule(
            [f"h{i:04d}" for i in range(40)]
        )
        starts = {FleetEventKind.HOST_CRASH: FleetEventKind.HOST_RECOVERED}
        for start_kind, end_kind in starts.items():
            started = [e.subject for e in events if e.kind is start_kind]
            ended = [e.subject for e in events if e.kind is end_kind]
            assert sorted(started) == sorted(ended)

    def test_zero_rate_schedules_nothing(self):
        engine = make_engine(rate=0.0)
        assert engine.schedule([f"h{i}" for i in range(50)]) == []
        assert not engine.should_abort_migration("vm1", 1)

    def test_abort_decider_is_pure(self):
        a = make_engine(rate=0.5)
        b = make_engine(rate=0.5)
        for attempt in range(1, 4):
            assert a.should_abort_migration(
                "vm7", attempt
            ) == b.should_abort_migration("vm7", attempt)

    def test_from_spec_default_and_explicit_rates(self):
        engine = ChaosEngine.from_spec("123", HORIZON_MS)
        assert engine.plan.rates == DEFAULT_FLEET_RATES
        engine = ChaosEngine.from_spec("123:0.4", HORIZON_MS)
        assert engine.plan.rates.rate_of(FaultKind.HOST_CRASH) == 0.4
        # Collection faults stay disarmed under a chaos plan.
        assert engine.plan.rates.rate_of(
            FaultKind.TRUNCATED_GUEST_DUMP
        ) == 0.0

    def test_bad_spec_rejected(self):
        with pytest.raises(FaultSpecError):
            ChaosEngine.from_spec("nope", HORIZON_MS)
        with pytest.raises(ValueError):
            ChaosEngine.from_spec("1:0.5", 0)


def run_small(seed=4242, rate=0.25, jobs=None, policy="sharing-aware"):
    scenario = FleetScenario(
        host_count=30,
        vm_count=120,
        host_ram_bytes=16 * GiB,
        seed=seed,
        policy=policy,
        chaos_spec=f"{seed}:{rate}",
        horizon_ms=HORIZON_MS,
        compare_first_fit=False,
    )
    return run_fleet_scenario(scenario, jobs=jobs)


class TestControlLoop:
    def test_chaos_run_holds_every_invariant(self):
        result = run_small()
        assert result.faults_injected > 0
        assert result.violations == []
        report = validate_fleet(result.fleet, result.savings)
        assert report.ok, report.render()

    def test_no_vm_lost_or_double_placed(self):
        result = run_small()
        fleet = result.fleet
        seen = {}
        for host in fleet.hosts:
            for name in host.vms:
                assert name not in seen, f"{name} on two hosts"
                seen[name] = host.name
        for vm in fleet.vms.values():
            if vm.host is not None:
                assert seen.get(vm.name) == vm.host
        assert result.admitted + result.rejected == 120

    def test_crashed_hosts_are_evacuated(self):
        result = run_small(rate=0.4)
        crashes = result.fleet.log.by_kind(FleetEventKind.HOST_CRASH)
        assert crashes, "this seed should crash at least one host"
        for host in result.fleet.hosts:
            if host.state is HostState.DOWN:
                assert not host.vms

    def test_same_seed_same_run(self):
        a = run_small().as_dict()
        b = run_small().as_dict()
        assert a == b

    def test_serial_equals_parallel(self):
        a = run_small(jobs=1).as_dict()
        b = run_small(jobs=4).as_dict()
        assert a == b

    def test_different_seeds_diverge(self):
        a = run_small(seed=1)
        b = run_small(seed=2)
        assert (
            a.as_dict()["placement_fingerprint"]
            != b.as_dict()["placement_fingerprint"]
            or a.as_dict()["events"] != b.as_dict()["events"]
        )

    def test_chaos_off_means_no_faults_and_full_placement(self):
        scenario = FleetScenario(
            host_count=20,
            vm_count=80,
            seed=5,
            chaos_spec=None,
            horizon_ms=HORIZON_MS,
            compare_first_fit=False,
        )
        result = run_fleet_scenario(scenario)
        assert result.faults_injected == 0
        assert result.violations == []
        assert result.rejected == 0 and result.queued_final == 0
        assert result.savings.unreachable_hosts == 0
        assert result.savings.lower_bytes == result.savings.upper_bytes

    def test_overload_rejects_with_structured_reason(self):
        # 2 small hosts cannot hold 80 VMs: the tail must be rejected
        # (not silently dropped) once no offline capacity could help.
        scenario = FleetScenario(
            host_count=2,
            vm_count=80,
            host_ram_bytes=4 * GiB,
            seed=5,
            chaos_spec=None,
            horizon_ms=HORIZON_MS,
            compare_first_fit=False,
        )
        result = run_fleet_scenario(scenario)
        assert result.rejected > 0
        assert result.rejection_reasons["insufficient-capacity"] == (
            result.rejected
        )
        assert result.violations == []

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_fleet_scenario(FleetScenario(policy="psychic"))


class TestValidateFleet:
    def make_populated(self):
        catalog = ImageCatalog.generate(3)
        fleet = Fleet(4, 16 * GiB, catalog, seed=3)
        policy = FleetSharingAware()
        for index in range(8):
            vm = fleet.admit(f"vm{index}", catalog.images[index % 3])
            fleet.place_vm(vm, policy.choose(fleet, vm))
        return fleet

    def test_clean_fleet_validates(self):
        report = validate_fleet(self.make_populated())
        assert report.ok
        assert report.findings == []

    def test_detects_commit_mismatch(self):
        fleet = self.make_populated()
        fleet.hosts[0].committed_bytes += 4096
        report = validate_fleet(fleet)
        assert "fleet-commit-mismatch" in report.codes()
        assert "fleet-bytes-not-conserved" in report.codes()

    def test_detects_lost_vm(self):
        fleet = self.make_populated()
        vm = next(iter(fleet.vms.values()))
        host = fleet.host_by_name[vm.host]
        del host.vms[vm.name]
        host.committed_bytes -= vm.memory_bytes
        report = validate_fleet(fleet)
        assert "fleet-vm-lost" in report.codes()

    def test_detects_double_placement(self):
        fleet = self.make_populated()
        vm = next(iter(fleet.vms.values()))
        other = next(
            host for host in fleet.hosts if host.name != vm.host
        )
        other.vms[vm.name] = vm
        other.committed_bytes += vm.memory_bytes
        report = validate_fleet(fleet)
        assert "fleet-vm-double-placed" in report.codes()

    def test_detects_occupied_down_host(self):
        fleet = self.make_populated()
        occupied = next(host for host in fleet.hosts if host.vms)
        occupied.state = HostState.DOWN
        report = validate_fleet(fleet)
        assert "fleet-down-host-occupied" in report.codes()

    def test_detects_reservation_leak(self):
        fleet = self.make_populated()
        fleet.hosts[0].reserved_bytes += 4096
        report = validate_fleet(fleet)
        assert "fleet-reservation-leak" in report.codes()

    def test_detects_insane_savings_bounds(self):
        from repro.datacenter.fleet import FleetSavings

        fleet = self.make_populated()
        bad = FleetSavings(
            lower_bytes=-1, upper_bytes=-2,
            reachable_hosts=4, unreachable_hosts=0,
        )
        report = validate_fleet(fleet, bad)
        assert "fleet-negative-savings" in report.codes()


class TestControllerPieces:
    def test_degraded_host_drains(self):
        catalog = ImageCatalog.generate(9)
        fleet = Fleet(3, 16 * GiB, catalog, seed=9)
        controller = FleetController(fleet, FleetSharingAware())
        arrivals = generate_arrivals(catalog, 12, seed=9, window_ms=1000)
        result = controller.run(arrivals, horizon_ms=2000)
        assert result.violations == []
        victim = next(host for host in fleet.hosts if host.vms)
        from repro.datacenter.events import FleetEvent

        controller._apply(
            FleetEvent(3000, FleetEventKind.HOST_DEGRADED, victim.name),
            result,
        )
        assert victim.state is HostState.DEGRADED
        assert not victim.vms  # everything migrated away
        assert validate_fleet(fleet).ok

    def test_pressure_spike_relieves_and_ends(self):
        catalog = ImageCatalog.generate(9)
        fleet = Fleet(3, 16 * GiB, catalog, seed=9)
        controller = FleetController(fleet, FleetSharingAware())
        arrivals = generate_arrivals(catalog, 12, seed=9, window_ms=1000)
        result = controller.run(arrivals, horizon_ms=2000)
        target = max(fleet.hosts, key=lambda h: h.committed_bytes)
        from repro.datacenter.events import FleetEvent

        controller._apply(
            FleetEvent(
                3000, FleetEventKind.MEMORY_PRESSURE_SPIKE, target.name,
                payload=(0.9,),
            ),
            result,
        )
        assert target.pressure_bytes > 0
        assert validate_fleet(fleet).ok
        controller._apply(
            FleetEvent(
                4000, FleetEventKind.MEMORY_PRESSURE_END, target.name,
                payload=(0.9,),
            ),
            result,
        )
        assert target.pressure_bytes == 0


class TestRetryFromQueue:
    """Freed capacity re-admits queued VMs without waiting for the
    next chaos event (the retry-from-queue follow-up)."""

    @staticmethod
    def _image(name, memory_bytes):
        from repro.datacenter.fleet import VmImage

        return VmImage(
            name=name,
            family="f0",
            memory_bytes=memory_bytes,
            resident_pages=1024,
            shared_tokens=(),
            dirty_pages_per_s=10.0,
        )

    def test_rebalance_readmits_queued_vm(self):
        from repro.datacenter.controller import FleetRunResult
        from repro.datacenter.events import FleetEvent
        from repro.datacenter.fleet import FleetFirstFit, VmState

        big = self._image("img-big", 8 * GiB)
        small = self._image("img-small", 3 * GiB)
        queued = self._image("img-queued", 6 * GiB)
        catalog = ImageCatalog([big, small, queued], spec=("manual",))
        fleet = Fleet(2, 16 * GiB, catalog, seed=5)
        host0, host1 = fleet.hosts
        host1.capacity_bytes = 4 * GiB  # recovered host is a small one
        controller = FleetController(fleet, FleetFirstFit())
        result = FleetRunResult(
            fleet=fleet, policy="first-fit", horizon_ms=10_000
        )

        fleet.place_vm(fleet.admit("vm-big", big), host0)
        fleet.place_vm(fleet.admit("vm-small", small), host0)
        host1.state = HostState.DOWN
        vm_queued = fleet.admit("vm-queued", queued)
        assert vm_queued.state is VmState.PENDING
        # 5 GiB free on host0, host1 down: the 6 GiB VM cannot land.
        assert controller.policy.choose(fleet, vm_queued) is None

        controller._apply(
            FleetEvent(5000, FleetEventKind.HOST_RECOVERED, host1.name),
            result,
        )
        # Recovery alone cannot take it (4 GiB host), but the rebalance
        # move (vm-small -> host1) frees host0, and the post-rebalance
        # heal must re-admit the queued VM right away.
        assert result.migrations.committed == 1
        assert vm_queued.state is VmState.RUNNING
        assert vm_queued.host == host0.name
        assert fleet.pending_vms() == []
        assert validate_fleet(fleet).ok

    def test_relieve_and_drain_reheal_without_violations(self):
        """The heal-after-migration hooks keep every fleet invariant."""
        catalog = ImageCatalog.generate(9)
        fleet = Fleet(3, 16 * GiB, catalog, seed=9)
        controller = FleetController(fleet, FleetSharingAware())
        arrivals = generate_arrivals(catalog, 12, seed=9, window_ms=1000)
        result = controller.run(arrivals, horizon_ms=2000)
        from repro.datacenter.events import FleetEvent

        victim = next(host for host in fleet.hosts if host.vms)
        controller._apply(
            FleetEvent(3000, FleetEventKind.HOST_DEGRADED, victim.name),
            result,
        )
        target = max(fleet.hosts, key=lambda h: h.committed_bytes)
        controller._apply(
            FleetEvent(
                4000, FleetEventKind.MEMORY_PRESSURE_SPIKE, target.name,
                payload=(0.9,),
            ),
            result,
        )
        assert validate_fleet(fleet).ok
