"""Cross-cutting integration checks that no single module test covers."""

import pytest

from repro.core.accounting import (
    UserKind,
    build_frame_usage,
    owner_oriented_accounting,
)
from repro.core.dump import collect_system_dump
from repro.guestos.kernel import GuestKernel, OwnerKind, PageOwner
from repro.hypervisor.kvm import KvmHost
from repro.hypervisor.powervm import PowerVmHost
from repro.jvm.jvm import JavaVM
from repro.units import MiB

from tests.conftest import tiny_kernel_profile, tiny_workload

PAGE = 4096


class TestJvmOnPowerVm:
    def test_full_jvm_runs_inside_an_lpar(self):
        """The whole JVM stack works on the system-VM hypervisor too —
        the paper's §V.B portability claim."""
        host = PowerVmHost(512 * MiB, seed=29)
        lpar = host.create_guest("lpar1", 64 * MiB)
        kernel = GuestKernel(
            lpar, host.rng.derive("g"), debug_kernel=False
        )
        kernel.boot(tiny_kernel_profile())
        workload = tiny_workload()
        jvm = JavaVM(
            kernel.spawn("java"),
            workload.jvm_config,
            workload.profile,
            workload.universe(),
            host.rng.derive("jvm"),
        )
        jvm.startup()
        jvm.tick()
        assert jvm.resident_bytes() > 0
        assert host.monitor_total_usage_bytes() > 0

    def test_two_preloaded_lpars_share_after_dedup(self):
        from repro.core.preload import CacheDeployment, CacheProvisioner

        host = PowerVmHost(512 * MiB, seed=29)
        provisioner = CacheProvisioner(
            CacheDeployment.SHARED_COPY, PAGE, host.rng.derive("p")
        )
        workload = tiny_workload()
        for name in ("lpar1", "lpar2"):
            lpar = host.create_guest(name, 64 * MiB)
            kernel = GuestKernel(
                lpar, host.rng.derive("g", name), debug_kernel=False
            )
            kernel.boot(tiny_kernel_profile())
            cache = provisioner.cache_for(workload, name)
            jvm = JavaVM(
                kernel.spawn("java"),
                workload.jvm_config.with_sharing(True),
                workload.profile,
                workload.universe(),
                host.rng.derive("jvm", name),
                cache=cache,
            )
            jvm.startup()
        before = host.monitor_total_usage_bytes()
        merged = host.run_page_sharing()
        after = host.monitor_total_usage_bytes()
        assert merged > 0
        assert after < before


class TestAccountingEdges:
    def test_guest_freed_pages_charged_to_kernel(self):
        """Pages a guest freed but the host still backs (no ballooning)
        appear under the guest kernel in the breakdown."""
        host = KvmHost(64 * MiB, seed=29)
        vm = host.create_guest("vm1", 4 * MiB)
        kernel = GuestKernel(vm, host.rng.derive("g"))
        gfn = kernel.alloc_gfn(PageOwner(OwnerKind.KERNEL, tag="slab"))
        vm.write_gfn(gfn, 123)
        kernel.free_gfn(gfn)
        dump = collect_system_dump(host, {"vm1": kernel})
        usage = build_frame_usage(dump)
        assert len(usage) == 1
        (mappings,) = usage.values()
        assert mappings[0].user.kind is UserKind.KERNEL
        assert mappings[0].tag == "kernel:free"

    def test_host_kernel_memory_not_in_guest_accounting(self):
        host = KvmHost(64 * MiB, seed=29, host_kernel_bytes=MiB)
        vm = host.create_guest("vm1", 4 * MiB)
        kernel = GuestKernel(vm, host.rng.derive("g"))
        process = kernel.spawn("p")
        vma = process.mmap_anon(PAGE, "p:heap")
        process.write_token(vma, 0, 1)
        dump = collect_system_dump(host, {"vm1": kernel})
        accounting = owner_oriented_accounting(dump)
        # Only the guest page is attributed; the host kernel MiB is not.
        assert accounting.total_usage() == PAGE


class TestHostKsmDriving:
    def test_run_ksm_for_ms_advances_clock(self):
        host = KvmHost(64 * MiB, seed=29)
        vm = host.create_guest("vm1", 4 * MiB)
        vm.write_gfn(0, 1)
        before = host.clock.now_ms
        host.run_ksm_for_ms(1_000)
        assert host.clock.now_ms >= before + 900

    def test_warmup_restores_scan_rate(self):
        """The testbed boosts pages_to_scan for warm-up and must restore
        the measurement setting afterwards (§II.C)."""
        from repro.core.experiments.testbed import (
            GuestSpec,
            KvmTestbed,
            TestbedConfig,
        )

        config = TestbedConfig(
            host_ram_bytes=128 * MiB,
            host_kernel_bytes=MiB,
            qemu_overhead_bytes=1 << 16,
            kernel_profile=tiny_kernel_profile(),
            measurement_ticks=1,
            tick_minutes=0.1,
            scale=0.02,
        )
        testbed = KvmTestbed(
            [GuestSpec("vm1", 16 * MiB, tiny_workload())], config
        )
        testbed.run()
        assert (
            testbed.host.ksm.config.pages_to_scan
            == config.ksm.pages_to_scan
        )
