"""Unit tests for the JVM work area and thread stacks."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.jvm.stacks import ThreadStacks
from repro.jvm.workarea import JvmWorkArea, TAG_NIO, TAG_PRIVATE, TAG_SLACK
from repro.mem.content import ZERO_TOKEN
from repro.units import KiB, MiB

PAGE = 4096


def make_process(vm_name="vm1", seed=3, host=None):
    if host is None:
        host = KvmHost(128 * MiB, seed=seed)
    vm = host.create_guest(vm_name, 16 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g", vm_name))
    return host, kernel.spawn("java")


def make_workarea(process, host, benchmark="bench:mw"):
    return JvmWorkArea(
        process,
        host.rng.derive("jvm", process.kernel.vm.name),
        benchmark_id=benchmark,
        nio_bytes=4 * PAGE,
        zero_slack_bytes=4 * PAGE,
        private_bytes=8 * PAGE,
    )


class TestWorkArea:
    def test_initialize_touches_everything(self):
        host, process = make_process()
        work = make_workarea(process, host)
        work.initialize()
        assert work.resident_bytes() == 16 * PAGE
        assert process.resident_bytes() == 16 * PAGE

    def test_double_initialize_rejected(self):
        host, process = make_process()
        work = make_workarea(process, host)
        work.initialize()
        with pytest.raises(RuntimeError):
            work.initialize()

    def test_tick_requires_initialize(self):
        host, process = make_process()
        work = make_workarea(process, host)
        with pytest.raises(RuntimeError):
            work.tick()

    def test_slack_pages_are_zero(self):
        """Unused malloc-arena blocks and bulk-allocated-unused structures
        are zero pages (the paper's §III.A sharing sources)."""
        host, process = make_process()
        work = make_workarea(process, host)
        work.initialize()
        for page in range(work.slack_vma.npages):
            assert process.read_token(work.slack_vma, page) == ZERO_TOKEN

    def test_nio_identical_across_vms_same_benchmark(self):
        """NIO buffers mirror the driver's data: identical across VMs
        running the same benchmark."""
        host = KvmHost(256 * MiB, seed=3)
        tokens = []
        for vm_name in ("vm1", "vm2"):
            _h, process = make_process(vm_name, host=host)
            work = make_workarea(process, host)
            work.initialize()
            tokens.append(
                [
                    process.read_token(work.nio_vma, page)
                    for page in range(work.nio_vma.npages)
                ]
            )
        assert tokens[0] == tokens[1]

    def test_nio_differs_across_benchmarks(self):
        host = KvmHost(256 * MiB, seed=3)
        tokens = []
        for vm_name, benchmark in (("vm1", "daytrader:mw"),
                                   ("vm2", "tpcw:mw")):
            _h, process = make_process(vm_name, host=host)
            work = make_workarea(process, host, benchmark=benchmark)
            work.initialize()
            tokens.append(
                [
                    process.read_token(work.nio_vma, page)
                    for page in range(work.nio_vma.npages)
                ]
            )
        assert tokens[0] != tokens[1]

    def test_private_pages_differ_across_vms(self):
        host = KvmHost(256 * MiB, seed=3)
        sets = []
        for vm_name in ("vm1", "vm2"):
            _h, process = make_process(vm_name, host=host)
            work = make_workarea(process, host)
            work.initialize()
            sets.append(
                {
                    process.read_token(work.private_vma, page)
                    for page in range(work.private_vma.npages)
                }
            )
        assert sets[0].isdisjoint(sets[1])

    def test_tick_churns_part_of_private(self):
        host, process = make_process()
        work = make_workarea(process, host)
        work.initialize()
        before = [
            process.read_token(work.private_vma, page)
            for page in range(work.private_vma.npages)
        ]
        work.tick()
        after = [
            process.read_token(work.private_vma, page)
            for page in range(work.private_vma.npages)
        ]
        changed = sum(1 for a, b in zip(before, after) if a != b)
        assert 0 < changed < work.private_vma.npages

    def test_tick_preserves_nio_and_slack(self):
        host, process = make_process()
        work = make_workarea(process, host)
        work.initialize()
        work.tick()
        assert all(
            process.read_token(work.slack_vma, page) == ZERO_TOKEN
            for page in range(work.slack_vma.npages)
        )


class TestStacks:
    def test_initialize_touches_stacks(self):
        host, process = make_process()
        stacks = ThreadStacks(
            process, host.rng.derive("jvm"), thread_count=3,
            stack_bytes=4 * PAGE,
        )
        stacks.initialize()
        assert len(stacks.stacks) == 3
        assert process.resident_bytes() == 12 * PAGE

    def test_tick_rewrites_active_depth(self):
        host, process = make_process()
        stacks = ThreadStacks(
            process, host.rng.derive("jvm"), thread_count=1,
            stack_bytes=4 * PAGE, active_fraction=0.5,
        )
        stacks.initialize()
        vma = stacks.stacks[0]
        before = [process.read_token(vma, page) for page in range(4)]
        stacks.tick()
        after = [process.read_token(vma, page) for page in range(4)]
        assert after[:2] != before[:2]  # active frames rewritten
        assert after[2:] == before[2:]  # deep frames untouched

    def test_zero_threads_rejected(self):
        host, process = make_process()
        with pytest.raises(ValueError):
            ThreadStacks(process, host.rng.derive("jvm"), 0, PAGE)

    def test_stack_tokens_process_unique(self):
        host = KvmHost(256 * MiB, seed=3)
        sets = []
        for vm_name in ("vm1", "vm2"):
            _h, process = make_process(vm_name, host=host)
            stacks = ThreadStacks(
                process, host.rng.derive("jvm", vm_name), 2, 2 * PAGE
            )
            stacks.initialize()
            tokens = set()
            for _vpn, gfn, _vma in process.iter_mapped():
                tokens.add(process.kernel.vm.read_gfn(gfn))
            sets.append(tokens)
        assert sets[0].isdisjoint(sets[1])

    def test_resident_bytes(self):
        host, process = make_process()
        stacks = ThreadStacks(
            process, host.rng.derive("jvm"), 2, 2 * PAGE
        )
        stacks.initialize()
        assert stacks.resident_bytes() == 4 * PAGE
