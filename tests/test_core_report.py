"""Unit tests for the text report renderers."""

from repro.core.accounting import CategoryUsage, OwnerAccounting, UserKey, UserKind
from repro.core.breakdown import (
    JavaBreakdown,
    JavaProcessRow,
    VmBreakdown,
    VmRow,
    VM_GROUPS,
)
from repro.core.categories import MemoryCategory
from repro.core.report import (
    fmt_mb,
    render_java_breakdown,
    render_kv,
    render_series,
    render_vm_breakdown,
)
from repro.units import MiB


def make_vm_breakdown():
    rows = []
    for index, name in enumerate(("vm1", "vm2")):
        rows.append(
            VmRow(
                vm_name=name,
                vm_index=index,
                usage_bytes={g: (index + 1) * MiB for g in VM_GROUPS},
                shared_bytes={g: index * MiB for g in VM_GROUPS},
            )
        )
    return VmBreakdown(rows=rows)


def make_java_breakdown():
    rows = []
    for index, name in enumerate(("vm1", "vm2")):
        row = JavaProcessRow(vm_name=name, vm_index=index, pid=300 + index)
        for category in MemoryCategory:
            row.categories[category] = CategoryUsage(
                usage_bytes=2 * MiB, shared_bytes=index * MiB
            )
        rows.append(row)
    return JavaBreakdown(rows=rows)


class TestRenderers:
    def test_fmt_mb(self):
        assert fmt_mb(3 * MiB).strip() == "3.0"

    def test_vm_breakdown_contains_rows_and_totals(self):
        text = render_vm_breakdown(make_vm_breakdown(), "Fig. 2")
        assert "Fig. 2" in text
        assert "vm1" in text and "vm2" in text
        assert "TOTAL" in text
        assert "Guest kernel" in text

    def test_java_breakdown_contains_categories(self):
        text = render_java_breakdown(make_java_breakdown(), "Fig. 3(a)")
        assert "Class metadata" in text
        assert "JVM and JIT work" in text
        assert "vm1:pid300" in text

    def test_series(self):
        text = render_series(
            "Fig. 7",
            "VMs",
            [1, 2],
            {"default": [10.0, 20.0], "preloaded": [11.0, 21.0]},
        )
        assert "Fig. 7" in text
        assert "default" in text and "preloaded" in text
        assert "21.0" in text

    def test_kv(self):
        text = render_kv("Check", [("saving", "181 MB")])
        assert "saving" in text and "181 MB" in text
