"""Tests for the fleet-scale model: images, hosts, placement, savings."""

import pytest

from repro.datacenter.fleet import (
    Fleet,
    FleetFirstFit,
    FleetSharingAware,
    HostState,
    ImageCatalog,
    TOKEN_SPAN_PAGES,
    VmState,
    converge_host_savings,
    generate_arrivals,
)
from repro.exec.runner import ParallelRunner
from repro.units import DEFAULT_PAGE_SIZE, GiB


def make_fleet(hosts=8, ram=16 * GiB, seed=7):
    catalog = ImageCatalog.generate(seed)
    return Fleet(hosts, ram, catalog, seed=seed), catalog


class TestImageCatalog:
    def test_generation_is_deterministic(self):
        a = ImageCatalog.generate(42)
        b = ImageCatalog.generate(42)
        assert [i.name for i in a.images] == [i.name for i in b.images]
        assert [i.shared_tokens for i in a.images] == [
            i.shared_tokens for i in b.images
        ]

    def test_from_spec_rebuilds_identically(self):
        a = ImageCatalog.generate(42, image_count=6, family_count=2)
        b = ImageCatalog.from_spec(a.spec)
        assert [i.shared_tokens for i in a.images] == [
            i.shared_tokens for i in b.images
        ]

    def test_same_family_images_share_tokens(self):
        catalog = ImageCatalog.generate(7, image_count=6, family_count=3)
        by_family = {}
        for image in catalog.images:
            by_family.setdefault(image.family, []).append(image)
        for family, members in by_family.items():
            if len(members) < 2:
                continue
            a, b = members[0], members[1]
            common = set(a.shared_tokens) & set(b.shared_tokens)
            assert len(common) >= 32, family

    def test_similarity_reflects_families(self):
        catalog = ImageCatalog.generate(7, image_count=6, family_count=3)
        sim = catalog.similarity()
        a, b = catalog.images[0], catalog.images[3]   # same family
        c = catalog.images[1]                         # different family
        assert a.family == b.family and a.family != c.family
        assert sim[(a.name, b.name)] > sim[(a.name, c.name)]
        assert sim[(a.name, b.name)] == sim[(b.name, a.name)]

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            ImageCatalog.generate(1, image_count=0)


class TestFleetBookkeeping:
    def test_place_and_orphan_round_trip(self):
        fleet, catalog = make_fleet()
        vm = fleet.admit("vm1", catalog.images[0])
        host = fleet.hosts[0]
        fleet.place_vm(vm, host)
        assert vm.state is VmState.RUNNING
        assert fleet.placements["vm1"] == host.name
        assert host.committed_bytes == vm.memory_bytes
        fleet.orphan_vm(vm)
        assert vm.state is VmState.PENDING
        assert "vm1" not in fleet.placements
        assert host.committed_bytes == 0
        assert host.image_counts == {}

    def test_admission_jitter_is_per_vm_deterministic(self):
        a, catalog = make_fleet()
        b, _ = make_fleet()
        for name in ("vm1", "vm2"):
            assert (
                a.admit(name, catalog.images[0]).dirty_pages_per_s
                == b.admit(name, catalog.images[0]).dirty_pages_per_s
            )

    def test_reserve_commit_moves_vm_atomically(self):
        fleet, catalog = make_fleet()
        vm = fleet.admit("vm1", catalog.images[0])
        src, dst = fleet.hosts[0], fleet.hosts[1]
        fleet.place_vm(vm, src)
        fleet.reserve(vm, dst)
        assert vm.state is VmState.MIGRATING
        assert dst.reserved_bytes == vm.memory_bytes
        fleet.commit_migration(vm)
        assert vm.state is VmState.RUNNING
        assert vm.host == dst.name
        assert src.committed_bytes == 0
        assert dst.committed_bytes == vm.memory_bytes
        assert dst.reserved_bytes == 0

    def test_release_reservation_rolls_back(self):
        fleet, catalog = make_fleet()
        vm = fleet.admit("vm1", catalog.images[0])
        src, dst = fleet.hosts[0], fleet.hosts[1]
        fleet.place_vm(vm, src)
        fleet.reserve(vm, dst)
        fleet.release_reservation(vm)
        assert vm.state is VmState.RUNNING
        assert vm.host == src.name
        assert dst.reserved_bytes == 0

    def test_down_host_rejects_placement(self):
        fleet, catalog = make_fleet()
        vm = fleet.admit("vm1", catalog.images[0])
        fleet.hosts[0].state = HostState.DOWN
        assert not fleet.hosts[0].accepts(vm.memory_bytes)
        with pytest.raises(ValueError):
            fleet.place_vm(vm, fleet.hosts[0])

    def test_pressure_shrinks_admission_not_physics(self):
        fleet, _ = make_fleet(ram=4 * GiB)
        host = fleet.hosts[0]
        host.pressure_bytes = 3 * GiB
        assert host.effective_capacity_bytes == 1 * GiB
        assert host.capacity_bytes == 4 * GiB


class TestSavings:
    def test_converge_host_savings_counts_duplicates(self):
        catalog = ImageCatalog.generate(7)
        image = catalog.images[0]
        saved = converge_host_savings(
            catalog.spec, ((image.name, 3),), DEFAULT_PAGE_SIZE
        )
        expected = (
            len(image.shared_tokens) * 2 * TOKEN_SPAN_PAGES
            * DEFAULT_PAGE_SIZE
        )
        assert saved == expected

    def test_single_instance_saves_nothing(self):
        catalog = ImageCatalog.generate(7)
        saved = converge_host_savings(
            catalog.spec, ((catalog.images[0].name, 1),), DEFAULT_PAGE_SIZE
        )
        assert saved == 0

    def test_savings_identical_serial_vs_parallel(self):
        fleet, catalog = make_fleet(hosts=6)
        policy = FleetSharingAware()
        for index in range(24):
            vm = fleet.admit(
                f"vm{index:02d}", catalog.images[index % len(catalog.images)]
            )
            fleet.place_vm(vm, policy.choose(fleet, vm))
        serial = fleet.savings_by_host(ParallelRunner(jobs=1))
        parallel = fleet.savings_by_host(ParallelRunner(jobs=4))
        assert serial == parallel
        assert sum(serial.values()) > 0

    def test_partitioned_hosts_widen_the_bounds(self):
        fleet, catalog = make_fleet(hosts=4)
        for index in range(8):
            vm = fleet.admit(f"vm{index}", catalog.images[0])
            fleet.place_vm(vm, fleet.hosts[index % 4])
        full = fleet.savings()
        fleet.hosts[0].state = HostState.PARTITIONED
        bounded = fleet.savings()
        assert bounded.unreachable_hosts == 1
        assert bounded.lower_bytes < full.lower_bytes
        assert bounded.upper_bytes == full.upper_bytes
        assert bounded.lower_bytes >= 0


class TestPolicies:
    def test_sharing_aware_collocates_same_image(self):
        fleet, catalog = make_fleet(hosts=4)
        policy = FleetSharingAware()
        image = catalog.images[0]
        first = fleet.admit("vm1", image)
        fleet.place_vm(first, policy.choose(fleet, first))
        second = fleet.admit("vm2", image)
        chosen = policy.choose(fleet, second)
        assert chosen.name == first.host

    def test_first_fit_fills_in_host_order(self):
        fleet, catalog = make_fleet(hosts=3)
        policy = FleetFirstFit()
        vm = fleet.admit("vm1", catalog.images[0])
        assert policy.choose(fleet, vm).name == fleet.hosts[0].name

    def test_policy_returns_none_when_everything_is_down(self):
        fleet, catalog = make_fleet(hosts=2)
        for host in fleet.hosts:
            host.state = HostState.DOWN
        vm = fleet.admit("vm1", catalog.images[0])
        assert FleetFirstFit().choose(fleet, vm) is None
        assert FleetSharingAware().choose(fleet, vm) is None


class TestArrivals:
    def test_arrivals_deterministic_and_sorted(self):
        catalog = ImageCatalog.generate(7)
        a = generate_arrivals(catalog, 50, seed=3, window_ms=60_000)
        b = generate_arrivals(catalog, 50, seed=3, window_ms=60_000)
        assert a == b
        times = [event.at_ms for event in a]
        assert times == sorted(times)
        assert len({event.subject for event in a}) == 50

    def test_different_seeds_differ(self):
        catalog = ImageCatalog.generate(7)
        a = generate_arrivals(catalog, 50, seed=3, window_ms=60_000)
        b = generate_arrivals(catalog, 50, seed=4, window_ms=60_000)
        assert a != b
