"""Tests for the multi-tenant JVM (§VI MVM / JSR-121 model)."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.jvm.jvm import JavaVM
from repro.jvm.multitenant import (
    MultiTenantJavaVM,
    ProcessCrashedError,
    TenantQuotaExceededError,
    TenantSpec,
)
from repro.units import KiB, MiB
from repro.workloads.classsets import ClassUniverse

from tests.conftest import tiny_profile, tiny_workload

PAGE = 4096


def make_server(fence=True, host=None, vm_name="vm1"):
    if host is None:
        host = KvmHost(256 * MiB, seed=23)
    vm = host.create_guest(vm_name, 64 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g", vm_name))
    process = kernel.spawn("mt-server")
    profile = tiny_profile()
    server = MultiTenantJavaVM(
        process,
        profile,
        ClassUniverse(profile),
        host.rng.derive("mt", vm_name),
        fence_tenant_faults=fence,
    )
    return host, server


class TestLifecycle:
    def test_startup_builds_shared_middleware(self):
        _host, server = make_server()
        server.startup()
        assert server.middleware_resident_bytes() > 0
        assert server.classes.loaded_count > 0

    def test_tenant_before_startup_rejected(self):
        _host, server = make_server()
        with pytest.raises(RuntimeError):
            server.add_tenant(TenantSpec("a", 256 * KiB))

    def test_double_startup_rejected(self):
        _host, server = make_server()
        server.startup()
        with pytest.raises(RuntimeError):
            server.startup()

    def test_add_tenants(self):
        _host, server = make_server()
        server.startup()
        a = server.add_tenant(TenantSpec("a", 512 * KiB))
        b = server.add_tenant(TenantSpec("b", 512 * KiB))
        assert server.live_tenants() == 2
        assert a.resident_bytes() > 0
        assert b.resident_bytes() > 0
        assert server.tenant("a") is a

    def test_duplicate_tenant_rejected(self):
        _host, server = make_server()
        server.startup()
        server.add_tenant(TenantSpec("a", 512 * KiB))
        with pytest.raises(ValueError):
            server.add_tenant(TenantSpec("a", 512 * KiB))

    def test_tick_runs_live_tenants(self):
        _host, server = make_server()
        server.startup()
        server.add_tenant(TenantSpec("a", 512 * KiB))
        server.tick()  # must not raise


class TestQuotas:
    def test_quota_enforced(self):
        """MVM counts Java-heap usage per application (§VI)."""
        _host, server = make_server()
        server.startup()
        tenant = server.add_tenant(TenantSpec("a", 512 * KiB))
        tenant.charge(256 * KiB)
        tenant.charge(256 * KiB)
        with pytest.raises(TenantQuotaExceededError):
            tenant.charge(1)
        assert tenant.charged_bytes == 512 * KiB

    def test_quota_is_per_tenant(self):
        _host, server = make_server()
        server.startup()
        a = server.add_tenant(TenantSpec("a", 256 * KiB))
        b = server.add_tenant(TenantSpec("b", 256 * KiB))
        a.charge(256 * KiB)
        b.charge(128 * KiB)  # unaffected by a's exhaustion


class TestFaultIsolation:
    def test_fenced_crash_kills_only_the_tenant(self):
        """MVM2 runs user JNI in service processes: one app's crash
        leaves the others running."""
        _host, server = make_server(fence=True)
        server.startup()
        server.add_tenant(TenantSpec("a", 256 * KiB))
        server.add_tenant(TenantSpec("b", 256 * KiB))
        server.crash_tenant("a")
        assert server.alive
        assert server.live_tenants() == 1
        server.tick()  # the survivor keeps running

    def test_unfenced_crash_kills_the_server(self):
        """Without fencing, 'the entire service process can crash'."""
        _host, server = make_server(fence=False)
        server.startup()
        server.add_tenant(TenantSpec("a", 256 * KiB))
        server.add_tenant(TenantSpec("b", 256 * KiB))
        with pytest.raises(ProcessCrashedError):
            server.crash_tenant("a")
        assert not server.alive
        with pytest.raises(ProcessCrashedError):
            server.tick()

    def test_dead_tenant_cannot_allocate(self):
        _host, server = make_server(fence=True)
        server.startup()
        tenant = server.add_tenant(TenantSpec("a", 256 * KiB))
        server.crash_tenant("a")
        with pytest.raises(ProcessCrashedError):
            tenant.charge(1)


class TestMemoryAdvantage:
    def test_beats_one_jvm_per_tenant(self):
        """The §VI memory argument: three apps in one server use far less
        memory than three separate (non-preloaded) JVM processes, because
        the middleware image exists once."""
        host = KvmHost(512 * MiB, seed=23)
        _h, server = make_server(host=host, vm_name="mt")
        server.startup()
        # Small per-app heaps relative to the middleware, like the WAS
        # reality (the middleware image dwarfs one application).
        for index in range(3):
            server.add_tenant(TenantSpec(f"app{index}", 256 * KiB))
        multi_tenant_bytes = server.resident_bytes()

        separate_bytes = 0
        workload = tiny_workload(jvm_overrides={"heap_bytes": 256 * KiB})
        for index in range(3):
            vm = host.create_guest(f"sep{index}", 64 * MiB)
            kernel = GuestKernel(vm, host.rng.derive("g", f"sep{index}"))
            process = kernel.spawn("java")
            jvm = JavaVM(
                process,
                workload.jvm_config,
                workload.profile,
                workload.universe(),
                host.rng.derive("jvm", f"sep{index}"),
            )
            jvm.startup()
            separate_bytes += jvm.resident_bytes()

        assert multi_tenant_bytes < 0.66 * separate_bytes
