"""Unit tests for the JIT compiler model."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.hypervisor.kvm import KvmHost
from repro.jvm.jit import JitCompiler, TAG_CODE, TAG_WORK
from repro.units import KiB, MiB

PAGE = 4096


def make_jit(vm_name="vm1", seed=3, code=256 * KiB, work=64 * KiB, host=None):
    if host is None:
        host = KvmHost(128 * MiB, seed=seed)
    vm = host.create_guest(vm_name, 32 * MiB)
    kernel = GuestKernel(vm, host.rng.derive("g", vm_name))
    process = kernel.spawn("java")
    jit = JitCompiler(process, host.rng.derive("jvm", vm_name), code, work)
    return host, process, jit


class TestCompilation:
    def test_compile_emits_code(self):
        _host, process, jit = make_jit()
        emitted = jit.compile_bytes(64 * KiB)
        jit.flush()
        assert emitted > 0
        assert jit.methods_compiled > 0
        assert jit.code_bytes_used == emitted
        code_vmas = process.vma_by_tag(TAG_CODE)
        assert code_vmas

    def test_budget_respected(self):
        _host, _process, jit = make_jit(code=64 * KiB)
        emitted = jit.compile_bytes(10 * MiB)
        assert emitted <= 64 * KiB
        assert jit.code_budget_left == 64 * KiB - emitted
        assert jit.compile_bytes(10 * MiB) == jit.code_budget_left == 0 or True
        assert jit.code_budget_left >= 0

    def test_compiled_code_differs_across_processes(self):
        """Profile-directed code generation: same methods, different code
        per process (§IV.A)."""
        host = KvmHost(256 * MiB, seed=3)
        token_sets = []
        for vm_name in ("vm1", "vm2"):
            _h, process, jit = make_jit(vm_name, host=host)
            jit.compile_bytes(64 * KiB)
            jit.flush()
            tokens = set()
            for _vpn, gfn, vma in process.iter_mapped():
                if vma.tag == TAG_CODE:
                    tokens.add(process.kernel.vm.read_gfn(gfn))
            token_sets.append(tokens)
        assert token_sets[0].isdisjoint(token_sets[1])

    def test_multiple_segments(self):
        _host, process, jit = make_jit(code=5 * MiB)
        jit.compile_bytes(5 * MiB)
        jit.flush()
        assert len(process.vma_by_tag(TAG_CODE)) >= 2


class TestWorkArea:
    def test_work_area_churns_on_compile(self):
        _host, process, jit = make_jit()
        jit.compile_bytes(16 * KiB)
        first = [
            process.read_token(jit.work_vma, page)
            for page in range(jit.work_vma.npages)
        ]
        jit.compile_bytes(16 * KiB)
        second = [
            process.read_token(jit.work_vma, page)
            for page in range(jit.work_vma.npages)
        ]
        assert all(a != b for a, b in zip(first, second))

    def test_work_area_tagged(self):
        _host, process, jit = make_jit()
        assert jit.work_vma.tag == TAG_WORK

    def test_no_churn_without_compilation(self):
        _host, process, jit = make_jit(code=16 * KiB)
        jit.compile_bytes(16 * KiB)
        snapshot = [
            process.read_token(jit.work_vma, page)
            for page in range(jit.work_vma.npages)
        ]
        assert jit.compile_bytes(16 * KiB) == 0  # budget exhausted
        after = [
            process.read_token(jit.work_vma, page)
            for page in range(jit.work_vma.npages)
        ]
        assert after == snapshot
