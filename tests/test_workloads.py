"""Unit tests for workload profiles, class universes and builders."""

import pytest

from repro.config import Benchmark
from repro.sim.rng import RngFactory
from repro.units import MiB
from repro.workloads import (
    DAYTRADER_PROFILE,
    DAYTRADER_POWER_PROFILE,
    SPECJ_PROFILE,
    TPCW_PROFILE,
    TUSCANY_PROFILE,
    ClassUniverse,
    LoaderKind,
    build_workload,
)
from repro.workloads.profile import WorkloadProfile

from tests.conftest import tiny_profile


class TestProfiles:
    def test_all_presets_valid(self):
        for profile in (
            DAYTRADER_PROFILE,
            DAYTRADER_POWER_PROFILE,
            SPECJ_PROFILE,
            TPCW_PROFILE,
            TUSCANY_PROFILE,
        ):
            assert profile.cacheable_classes > 0
            assert profile.total_classes > profile.cacheable_classes

    def test_jcl_is_minority(self):
        """≈10 % of preloadable classes are Java system classes (§V.A)."""
        for profile in (DAYTRADER_PROFILE, SPECJ_PROFILE, TPCW_PROFILE):
            fraction = profile.jcl_classes / profile.cacheable_classes
            assert 0.05 < fraction < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_profile(startup_load_fraction=1.5)
        with pytest.raises(ValueError):
            tiny_profile(heap_touched_fraction=0.0)
        with pytest.raises(ValueError):
            tiny_profile(middleware_classes=-1)

    def test_was_profiles_share_middleware_id(self):
        """DayTrader, SPECj and TPC-W run in the same WAS version, so
        their middleware classes must be identical (Fig. 3(b))."""
        assert (
            DAYTRADER_PROFILE.middleware_id
            == SPECJ_PROFILE.middleware_id
            == TPCW_PROFILE.middleware_id
        )
        assert TUSCANY_PROFILE.middleware_id != DAYTRADER_PROFILE.middleware_id


class TestClassUniverse:
    def test_population_counts(self):
        profile = tiny_profile()
        universe = ClassUniverse(profile)
        assert len(universe.jcl) == profile.jcl_classes
        assert len(universe.middleware) == profile.middleware_classes
        assert len(universe.app) == profile.app_classes
        assert len(universe) == profile.total_classes

    def test_cacheable_excludes_app(self):
        universe = ClassUniverse(tiny_profile())
        cacheable = universe.cacheable_classes()
        assert all(c.loader is not LoaderKind.APPLICATION for c in cacheable)
        assert len(cacheable) == tiny_profile().cacheable_classes

    def test_rom_ids_stable_across_instances(self):
        """Two universes of the same middleware version agree on every
        class's ROM content — the cross-VM identity TPS needs."""
        a = ClassUniverse(tiny_profile())
        b = ClassUniverse(tiny_profile())
        assert [c.rom_content_id for c in a.all_classes] == [
            c.rom_content_id for c in b.all_classes
        ]

    def test_rom_ids_differ_across_versions(self):
        a = ClassUniverse(tiny_profile(middleware_id="mw-1.0"))
        b = ClassUniverse(tiny_profile(middleware_id="mw-2.0"))
        assert [c.rom_content_id for c in a.all_classes] != [
            c.rom_content_id for c in b.all_classes
        ]

    def test_startup_runtime_partition(self):
        universe = ClassUniverse(tiny_profile(startup_load_fraction=0.8))
        startup = universe.startup_classes()
        runtime = universe.runtime_classes()
        assert len(startup) + len(runtime) == len(universe)
        names = {c.name for c in startup} | {c.name for c in runtime}
        assert len(names) == len(universe)

    def test_perturbed_order_is_permutation(self):
        universe = ClassUniverse(tiny_profile())
        rng = RngFactory(1)
        order = universe.perturbed_order(universe.all_classes, rng, "vm1")
        assert sorted(c.name for c in order) == sorted(
            c.name for c in universe.all_classes
        )

    def test_perturbed_order_differs_per_process(self):
        universe = ClassUniverse(tiny_profile())
        rng = RngFactory(1)
        a = universe.perturbed_order(universe.all_classes, rng, "vm1")
        b = universe.perturbed_order(universe.all_classes, rng, "vm2")
        assert [c.name for c in a] != [c.name for c in b]

    def test_perturbed_order_deterministic(self):
        universe = ClassUniverse(tiny_profile())
        a = universe.perturbed_order(
            universe.all_classes, RngFactory(1), "vm1"
        )
        b = universe.perturbed_order(
            universe.all_classes, RngFactory(1), "vm1"
        )
        assert [c.name for c in a] == [c.name for c in b]

    def test_class_sizes_aligned_and_positive(self):
        universe = ClassUniverse(tiny_profile())
        for cls in universe.all_classes:
            assert cls.rom_bytes % 16 == 0
            assert cls.ram_bytes % 16 == 0
            assert cls.rom_bytes >= 64

    def test_rom_bytes_totals(self):
        universe = ClassUniverse(tiny_profile())
        assert universe.cacheable_rom_bytes() < universe.total_rom_bytes()


class TestBuildWorkload:
    @pytest.mark.parametrize("bench", list(Benchmark))
    def test_builds_every_benchmark(self, bench):
        workload = build_workload(bench)
        assert workload.benchmark is bench
        assert workload.universe() is workload.universe()  # cached

    def test_power_daytrader(self):
        workload = build_workload(Benchmark.DAYTRADER, platform="power")
        assert workload.profile.middleware_id.endswith("ppc64")
        assert workload.jvm_config.heap_bytes == 1024 * MiB

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            build_workload(Benchmark.DAYTRADER, platform="arm")

    def test_daytrader_paper_configuration(self):
        """Table III: 530 MB heap, 120 MB shared class cache."""
        workload = build_workload(Benchmark.DAYTRADER)
        assert workload.jvm_config.heap_bytes == 530 * MiB
        assert workload.jvm_config.shared_cache_bytes == 120 * MiB
        assert workload.driver_config.client_threads == 12

    def test_tuscany_paper_configuration(self):
        workload = build_workload(Benchmark.TUSCANY_BIGBANK)
        assert workload.jvm_config.heap_bytes == 32 * MiB
        assert workload.jvm_config.shared_cache_bytes == 25 * MiB
        assert not workload.driver_config.uses_was

    def test_cache_fits_cacheable_rom(self):
        """Every paper workload's cacheable ROM fits its configured cache
        (the paper reports ~100 MB used of the 120 MB WAS cache)."""
        from repro.jvm.sharedcache import HEADER_BYTES

        for benchmark in Benchmark:
            workload = build_workload(benchmark)
            universe = workload.universe()
            # Account for the 256-byte alignment per class.
            padded = sum(
                ((c.rom_bytes + 255) // 256) * 256
                for c in universe.cacheable_classes()
            )
            assert (
                padded + HEADER_BYTES
                <= workload.jvm_config.shared_cache_bytes
            ), benchmark
